"""The SSD manager: shared machinery for all designs (Figure 1, §2.2).

The buffer pool calls the SSD manager at five points:

* on a page miss, to try serving the read from the SSD (:meth:`try_read`);
* after reading a page from disk (:meth:`on_read_from_disk` — only TAC
  acts here);
* when evicting a clean or dirty page (:meth:`on_evict_clean` /
  :meth:`on_evict_dirty` — where the CW/DW/LC designs differ);
* when a buffered page is dirtied (:meth:`invalidate`);
* when planning a multi-page read (:meth:`trim_plan`, §3.3.3).

The checkpointer adds :meth:`checkpoint_write` and :meth:`on_checkpoint`;
crash/restart simulation adds :meth:`on_crash` / :meth:`on_restart`.

Methods documented as *process steps* are generators to be driven with
``yield from``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.faults.errors import (
    RETRY_BASE_DELAY,
    RETRY_LIMIT,
    RETRY_MAX_DELAY,
    DeviceDeadError,
    IoFault,
)
from repro.sim import Environment
from repro.core.admission import AdmissionPolicy
from repro.core.config import SsdDesignConfig
from repro.core.heaps import LazyMinHeap
from repro.core.ssd_buffer_table import SsdBufferTable, SsdRecord
from repro.engine.disk_manager import DiskManager
from repro.engine.page import Frame
from repro.engine.recovery import RecoveryError
from repro.engine.wal import WriteAheadLog
from repro.storage.ssd import Ssd
from repro.telemetry import (
    CHECKPOINT_CTX,
    EVICTION_CTX,
    NULL_TELEMETRY,
    RECOVERY_CTX,
)

#: Concurrent disk writes per wave during degradation redo (matches the
#: checkpointer's FLUSH_BATCH).
DEGRADE_BATCH = 32


class TrimPlan:
    """Result of the §3.3.3 multi-page trimming decision.

    ``disk_start``/``disk_count`` describe the single contiguous disk read
    (count 0 means everything came from the SSD); ``ssd_pages`` are read
    from the SSD with individual I/Os; ``skip_in_run`` are pages inside the
    disk run whose disk copy must be discarded because a newer SSD copy is
    being read instead.

    Plain ``__slots__`` class (not a dataclass): one plan per multi-page
    read puts it on the RPL002 hot path, and the 3.10+ ``slots=True``
    dataclass option is out of reach on this codebase's 3.9 floor.
    """

    __slots__ = ("disk_start", "disk_count", "ssd_pages", "skip_in_run")

    def __init__(self, disk_start: int = 0, disk_count: int = 0,
                 ssd_pages: Sequence[int] = (),
                 skip_in_run: FrozenSet[int] = frozenset()):
        self.disk_start = disk_start
        self.disk_count = disk_count
        self.ssd_pages = ssd_pages
        self.skip_in_run = skip_in_run

    def __repr__(self) -> str:
        return (f"TrimPlan(disk_start={self.disk_start}, "
                f"disk_count={self.disk_count}, "
                f"ssd_pages={list(self.ssd_pages)!r}, "
                f"skip_in_run={sorted(self.skip_in_run)!r})")


class SsdStats:
    """Cumulative SSD-manager counters.

    Hand-slotted for the same reason as :class:`TrimPlan`; the counter
    set round-trips through :meth:`as_dict` (the sweep cache snapshots
    and restores it with ``SsdStats(**...)``).
    """

    __slots__ = (
        "reads",              # pages served from the SSD
        "writes",             # pages written to the SSD
        "declined_throttle",  # optional SSD I/Os skipped (μ)
        "invalidations",      # SSD copies invalidated on page dirty
        "evictions",          # SSD frames reclaimed by replacement
        "fallback_disk_writes",   # dirty evictions LC sent to disk
        "cleaner_pages",      # pages the LC cleaner wrote back
        "cleaner_ios",        # disk I/Os the cleaner issued
        "checkpoint_ssd_flushes",  # dirty SSD pages flushed at checkpoints
        "missed_dirty_writes",    # TAC: page dirtied before its SSD write
        "lambda_crossings",   # LC: upward crossings of the λ threshold
        "io_retries",         # SSD I/Os retried after transient faults
        "io_failures",        # SSD I/Os abandoned (budget/device death)
        "throttle_preserved",  # copies kept through a declined admit
        "detach_redo_pages",  # dirty pages redone to disk at SSD death
        "heap_reseeds",       # LC dirty-heap reseeds (desync recovery)
    )

    def __init__(self, reads: int = 0, writes: int = 0,
                 declined_throttle: int = 0, invalidations: int = 0,
                 evictions: int = 0, fallback_disk_writes: int = 0,
                 cleaner_pages: int = 0, cleaner_ios: int = 0,
                 checkpoint_ssd_flushes: int = 0,
                 missed_dirty_writes: int = 0, lambda_crossings: int = 0,
                 io_retries: int = 0, io_failures: int = 0,
                 throttle_preserved: int = 0, detach_redo_pages: int = 0,
                 heap_reseeds: int = 0):
        self.reads = reads
        self.writes = writes
        self.declined_throttle = declined_throttle
        self.invalidations = invalidations
        self.evictions = evictions
        self.fallback_disk_writes = fallback_disk_writes
        self.cleaner_pages = cleaner_pages
        self.cleaner_ios = cleaner_ios
        self.checkpoint_ssd_flushes = checkpoint_ssd_flushes
        self.missed_dirty_writes = missed_dirty_writes
        self.lambda_crossings = lambda_crossings
        self.io_retries = io_retries
        self.io_failures = io_failures
        self.throttle_preserved = throttle_preserved
        self.detach_redo_pages = detach_redo_pages
        self.heap_reseeds = heap_reseeds

    def as_dict(self) -> Dict[str, int]:
        """Counter name → value, in slot order (snapshot format)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SsdStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return f"SsdStats({nonzero!r})"


class SsdManagerBase:
    """Common implementation: table, heaps, admission, throttle, trimming."""

    # The manager sits on every page miss and eviction, so RPL002 keeps
    # its instances __dict__-free.  ``bp`` is assigned by the system
    # wiring after construction and must stay a slot.
    __slots__ = (
        "env", "device", "disk", "wal", "config", "admission", "table",
        "stats", "bp", "clean_heap", "dirty_heap", "detached",
        "_detach_started", "_detach_complete", "telemetry", "_tracer",
        "_tm_reads", "_tm_writes", "_tm_invalidations", "_tm_declined",
        "_tm_evictions", "_tm_fallback", "_tm_retries",
        "_tm_throttle_preserved",
    )

    #: Name used in figures and reports; subclasses override.
    name = "base"

    def __init__(self, env: Environment, device: Ssd, disk: DiskManager,
                 wal: WriteAheadLog, config: Optional[SsdDesignConfig] = None,
                 admission: Optional[AdmissionPolicy] = None,
                 telemetry=None):
        self.env = env
        self.device = device
        self.disk = disk
        self.wal = wal
        self.config = config or SsdDesignConfig()
        self.admission = admission or AdmissionPolicy(self.config)
        self.table = SsdBufferTable(self.config.ssd_frames,
                                    self.config.partitions)
        self.stats = SsdStats()
        #: Set by the system wiring; lets designs see checkpoint state.
        self.bp = None
        self.clean_heap = LazyMinHeap(
            key=lambda r: r.lru2_key(),
            member=lambda r: r.valid and not r.dirty)
        self.dirty_heap = LazyMinHeap(
            key=lambda r: r.lru2_key(),
            member=lambda r: r.valid and r.dirty)
        #: True once the SSD has been dropped from service (device death,
        #: §2.4 degradation): the design continues as noSSD.
        self.detached = False
        self._detach_started = False
        self._detach_complete = env.event()
        self.telemetry = telemetry or NULL_TELEMETRY
        registry = self.telemetry.registry
        self._tracer = self.telemetry.tracer
        self._tm_reads = registry.counter(
            "ssd_mgr_reads_total", "Pages served from the SSD buffer pool")
        self._tm_writes = registry.counter(
            "ssd_mgr_writes_total", "Pages admitted (written) to the SSD")
        self._tm_invalidations = registry.counter(
            "ssd_mgr_invalidations_total", "SSD copies invalidated on dirty")
        self._tm_declined = registry.counter(
            "ssd_mgr_declined_throttle_total",
            "Optional SSD I/Os skipped by throttle control (mu)")
        self._tm_evictions = registry.counter(
            "ssd_mgr_evictions_total", "SSD frames reclaimed by replacement")
        self._tm_fallback = registry.counter(
            "ssd_mgr_fallback_disk_writes_total",
            "Dirty evictions sent to disk instead of the SSD")
        self._tm_retries = registry.counter(
            "ssd_mgr_retries_total",
            "SSD I/Os retried after transient failures")
        self._tm_throttle_preserved = registry.counter(
            "ssd_mgr_throttle_preserved_total",
            "Existing SSD copies preserved through a declined admission")
        registry.gauge("ssd_used_frames", "Occupied SSD frames"
                       ).set_function(lambda: self.used_frames)
        registry.gauge("ssd_dirty_frames", "Dirty (newer-than-disk) SSD frames"
                       ).set_function(lambda: self.dirty_frames)
        registry.gauge("ssd_dirty_fraction",
                       "Dirty frames / SSD capacity (LC's lambda gauge)"
                       ).set_function(lambda: self.dirty_fraction)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def used_frames(self) -> int:
        """Occupied SSD frames."""
        return self.table.used_count

    @property
    def admission_fill_level(self) -> int:
        """Occupancy the admission fill phase (§3.3.2, τ·S) compares to.

        For the in-place designs every occupied frame is a cached page,
        so this is just :attr:`used_frames`.  LS overrides it with its
        valid-entry count: dead log entries awaiting tail reclaim are
        reclaimable space, not cached pages, and counting them would end
        the aggressive-fill phase while the cache is still half empty.
        """
        return self.used_frames

    @property
    def dirty_frames(self) -> int:
        """Dirty (newer-than-disk) SSD frames."""
        return self.table.dirty_count

    @property
    def dirty_fraction(self) -> float:
        """Dirty frames as a fraction of SSD capacity (LC's λ gauge)."""
        if self.config.ssd_frames == 0:
            return 0.0
        return self.table.dirty_count / self.config.ssd_frames

    def contains_valid(self, page_id: int) -> bool:
        """Whether the SSD holds a valid copy of ``page_id``."""
        return self.table.lookup_valid(page_id) is not None

    def contains_newer(self, page_id: int) -> bool:
        """SSD copy strictly newer than the disk copy (LC only)."""
        record = self.table.lookup_valid(page_id)
        return (record is not None
                and record.version > self.disk.disk_version(page_id))

    def oldest_dirty_rec_lsn(self) -> Optional[int]:
        """Smallest recovery LSN among dirty SSD pages (None if clean).

        Fuzzy checkpoints may not truncate the log past this point: the
        dirty SSD pages' updates exist only in the SSD and the log.
        """
        lsns = [r.rec_lsn for r in self.table.occupied_records()
                if r.valid and r.dirty]
        return min(lsns) if lsns else None

    def _throttled(self) -> bool:
        """True while optional SSD I/Os should be skipped (§3.3.2)."""
        return self.device.pending > self.config.throttle_limit

    # ------------------------------------------------------------------
    # Fault-hardened device access
    # ------------------------------------------------------------------

    def _ssd_io(self, submit, must: bool = False):
        """Process step: one SSD I/O with bounded retry + backoff.

        ``submit`` is a zero-argument callable returning a fresh device
        event.  Returns True on success; False when the device died, or —
        for optional I/Os (``must=False``) — when the retry budget ran
        out.  A *must* I/O guards the only newest copy of a page: it
        retries transients without bound (capped backoff) because falling
        back to disk would surface stale data; only device death stops
        it, and then degradation redo restores the page from the log.
        """
        delay = RETRY_BASE_DELAY
        attempt = 0
        while True:
            try:
                yield submit()
                return True
            except DeviceDeadError:
                self._note_device_dead()
                return False
            except IoFault:
                self.stats.io_retries += 1
                self._tm_retries.inc()
                if self._tracer.enabled:
                    self._tracer.instant(
                        "io_retry", "fault", "faults",
                        {"device": self.device.name, "attempt": attempt + 1})
                if not must and attempt >= RETRY_LIMIT:
                    self.stats.io_failures += 1
                    return False
                attempt += 1
                yield self.env.timeout(delay)
                delay = min(delay * 2, RETRY_MAX_DELAY)

    def _ssd_read_frame(self, frame_no: int, must: bool = False, ctx=None):
        """Process step: read one SSD frame; True on success."""
        return (yield from self._ssd_io(
            lambda: self.device.read(frame_no, 1, random=True, ctx=ctx),
            must=must))

    def _ssd_write_frame(self, frame_no: int, ctx=None):
        """Process step: write one SSD frame; True on success.

        SSD writes are always optional — the caller keeps (or falls back
        to) the disk copy when the write is abandoned."""
        return (yield from self._ssd_io(
            lambda: self.device.write(frame_no, 1, random=True, ctx=ctx)))

    def _note_device_dead(self) -> None:
        """The SSD reported permanent death: start degradation once."""
        if not self._detach_started:
            self.env.process(self.detach())

    def _await_detach(self):
        """Process step: wait until an in-progress detach has finished."""
        if not self._detach_complete.triggered:
            yield self._detach_complete

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def try_read(self, page_id: int, ctx=None):
        """Process step: serve a buffer-pool miss from the SSD if possible.

        Returns the page version read, or None to fall back to disk
        (page absent, SSD throttled and the disk copy is just as new, or
        the SSD has been detached after a device failure).
        """
        if self.detached:
            # During an in-progress detach the disk may not yet hold the
            # newest version (LC redo in flight): wait it out, then fall
            # back to the now-authoritative disk.
            yield from self._await_detach()
            return None
        record = self.table.lookup_valid(page_id)
        if record is None:
            return None
        newer = record.version > self.disk.disk_version(page_id)
        if self._throttled() and not newer:
            self.stats.declined_throttle += 1
            self._tm_declined.inc()
            return None
        return (yield from self._read_record(record, ctx=ctx))

    def read_for_correctness(self, page_id: int, ctx=None):
        """Process step: read a page that *must* come from the SSD."""
        record = self.table.lookup_valid(page_id)
        if record is None:
            raise LookupError(f"page {page_id} not valid in SSD")
        return (yield from self._read_record(record, ctx=ctx))

    def _read_record(self, record: SsdRecord, ctx=None):
        version = record.version
        self.stats.reads += 1
        self._tm_reads.inc()
        record.record_access(self.env.now)
        self._reheap(record)
        must = version > self.disk.disk_version(record.page_id)
        ok = yield from self._ssd_read_frame(record.frame_no, must=must,
                                             ctx=ctx)
        if not ok:
            # The device died (a must-read never gives up otherwise).
            # Degradation redo writes any newer-than-disk copy back to
            # disk before completing, so after the detach the caller's
            # disk fallback reads fresh data.
            yield from self._await_detach()
            return None
        return version

    def _reheap(self, record: SsdRecord) -> None:
        if not record.valid:
            return
        (self.dirty_heap if record.dirty else self.clean_heap).push(record)

    # ------------------------------------------------------------------
    # Caching (shared by the eviction hooks)
    # ------------------------------------------------------------------

    def _cache_page(self, page_id: int, version: int, dirty: bool,
                    rec_lsn: int = 0, ctx=None):
        """Process step: write one page image into the SSD buffer pool.

        Returns True if cached.  Handles the already-cached case, the
        throttle, frame allocation, and replacement.  ``rec_lsn`` is the
        recovery LSN carried by a dirty page (fuzzy checkpoints truncate
        the log against the oldest one; the conservative default of 0
        blocks truncation entirely until the page is cleaned).
        """
        existing = self.table.lookup_valid(page_id)
        if existing is not None and (existing.version == version
                                     and existing.dirty == dirty):
            existing.record_access(self.env.now)
            self._reheap(existing)
            return True
        if self.detached:
            return False
        if self._throttled():
            # Decline *before* touching the existing record: dropping a
            # valid copy and then refusing to replace it would destroy
            # data the throttle was only meant to defer.
            self.stats.declined_throttle += 1
            self._tm_declined.inc()
            if existing is not None:
                self.stats.throttle_preserved += 1
                self._tm_throttle_preserved.inc()
            return False
        if existing is not None:
            self._drop_record(existing)
        record = self.table.take_free()
        if record is None:
            record = self._evict_for_space()
            if record is None:
                return False
        self.table.install(record, page_id, version, dirty, self.env.now,
                           rec_lsn=rec_lsn)
        self._reheap(record)
        self.stats.writes += 1
        self._tm_writes.inc()
        if self._tracer.enabled:
            self._tracer.instant("admit", "ssd", "ssd_manager",
                                 {"page": page_id, "dirty": dirty})
        ok = yield from self._ssd_write_frame(record.frame_no, ctx=ctx)
        if not ok:
            # The image never reached the SSD: the record must not claim
            # it did.  Guard against the record having been invalidated
            # or reused while the failed write (and retries) ran.
            if (record.valid and record.page_id == page_id
                    and record.version == version):
                self._drop_record(record)
            return False
        return True

    def _evict_for_space(self) -> Optional[SsdRecord]:
        """Reclaim one frame via the replacement policy (clean heap)."""
        victim = self.clean_heap.pop()
        if victim is None:
            return None
        self.stats.evictions += 1
        self._tm_evictions.inc()
        self.table.release(victim)
        taken = self.table.take_free()
        assert taken is not None
        return taken

    def _drop_record(self, record: SsdRecord) -> None:
        """Physically free a record (our designs' invalidation)."""
        self.clean_heap.remove(record)
        self.dirty_heap.remove(record)
        self.table.release(record)

    # ------------------------------------------------------------------
    # Buffer-pool hooks (overridden per design)
    # ------------------------------------------------------------------

    def on_read_from_disk(self, frame: Frame) -> None:
        """Called after a page is read from disk into the pool (TAC hook)."""

    def on_evict_clean(self, frame: Frame):
        """Process step: a clean page leaves the pool.

        All three of the paper's designs cache qualifying clean pages at
        this point; if the SSD already holds the identical copy nothing
        is written.
        """
        if self.detached:
            # Degraded to noSSD.  A clean frame can still be newer than
            # disk (it was read from an SSD copy the degradation redo is
            # flushing, or already flushed); a redundant disk write is
            # monotone-safe and keeps this path self-contained.
            if frame.version > self.disk.disk_version(frame.page_id):
                yield from self.disk.write(frame.page_id, frame.version,
                                           sequential=False,
                                           ctx=EVICTION_CTX)
            return
        existing = self.table.lookup_valid(frame.page_id)
        if existing is not None:
            # Figure 3 invariant: a page valid in memory and the SSD has
            # equal versions (dirtying would have invalidated the copy).
            assert existing.version == frame.version, (
                f"SSD copy v{existing.version} != memory v{frame.version} "
                f"for clean page {frame.page_id}")
            existing.record_access(self.env.now)
            self._reheap(existing)
            return
        if self.admission.qualifies(frame, self.admission_fill_level):
            # A clean frame can still be *newer than disk*: under LC a
            # page whose only up-to-date copy lived in the SSD is read
            # back clean.  Re-caching it as clean would strand the newest
            # version where neither the cleaner nor a checkpoint flushes
            # it, losing it once the log truncates — so it re-enters the
            # SSD dirty.
            dirty = frame.version > self.disk.disk_version(frame.page_id)
            cached = yield from self._cache_page(frame.page_id,
                                                 frame.version, dirty=dirty,
                                                 ctx=EVICTION_CTX)
            if dirty and not cached:
                # Couldn't re-cache (throttle/full): the newest copy must
                # not be dropped — write it to disk instead.
                yield from self.disk.write(frame.page_id, frame.version,
                                           sequential=False,
                                           ctx=EVICTION_CTX)
            if dirty and cached:
                self._after_dirty_cached()
        elif frame.version > self.disk.disk_version(frame.page_id):
            yield from self.disk.write(frame.page_id, frame.version,
                                       sequential=False, ctx=EVICTION_CTX)

    def on_evict_dirty(self, frame: Frame):
        """Process step: a dirty page leaves the pool (design-specific)."""
        raise NotImplementedError

    def _after_dirty_cached(self) -> None:
        """Hook: a dirty page entered the SSD (LC wakes its cleaner)."""

    def start_cleaner(self) -> None:
        """Hook: launch background maintenance, if the design has any.

        LC runs a lazy-cleaning thread, LS a tail reclaimer; the other
        designs have nothing to start.  Idempotent everywhere.
        """

    def admission_flush_hint(self) -> None:
        """Hook: the buffer pool's eviction pressure has drained.

        Batching designs (LS) close and flush any partially filled
        admission batch here instead of waiting out the batch timeout;
        everyone else ignores it.
        """

    def invalidate(self, page_id: int) -> None:
        """A buffered page was dirtied: drop the SSD copy (physical)."""
        record = self.table.lookup(page_id)
        if record is not None and record.occupied:
            self.stats.invalidations += 1
            self._tm_invalidations.inc()
            self._drop_record(record)

    # ------------------------------------------------------------------
    # Multi-page trimming (§3.3.3)
    # ------------------------------------------------------------------

    def trim_plan(self, wanted: Sequence[int]) -> TrimPlan:
        """Plan a multi-page read: trim SSD-resident edges, keep one run."""
        if not wanted:
            return TrimPlan()
        ssd_pages: List[int] = []
        lo, hi = 0, len(wanted) - 1
        while lo <= hi and self.contains_valid(wanted[lo]):
            ssd_pages.append(wanted[lo])
            lo += 1
        while hi >= lo and self.contains_valid(wanted[hi]):
            ssd_pages.append(wanted[hi])
            hi -= 1
        if lo > hi:
            return TrimPlan(ssd_pages=ssd_pages)
        # Middle pages whose SSD copy is newer than disk must come from
        # the SSD; their stale disk copies are read (one contiguous I/O is
        # cheaper) but discarded.
        skip = frozenset(
            pid for pid in wanted[lo:hi + 1] if self.contains_newer(pid))
        ssd_pages.extend(skip)
        return TrimPlan(disk_start=wanted[lo],
                        disk_count=wanted[hi] - wanted[lo] + 1,
                        ssd_pages=ssd_pages, skip_in_run=skip)

    # ------------------------------------------------------------------
    # Checkpoint / restart hooks
    # ------------------------------------------------------------------

    def checkpoint_write(self, frame: Frame):
        """Process step: flush one dirty buffer-pool page at a checkpoint.

        Default (noSSD/CW/LC/TAC): write to disk only.  DW overrides to
        also prime the SSD (§3.2).
        """
        yield from self.disk.write(frame.page_id, frame.version,
                                   sequential=False, ctx=CHECKPOINT_CTX)

    def on_checkpoint(self):
        """Process step: design-specific checkpoint work (LC overrides)."""
        return
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # Graceful degradation on SSD death (§2.4)
    # ------------------------------------------------------------------

    def detach(self, reason: str = "ssd_failure"):
        """Process step: drop the SSD from service and continue as noSSD.

        For CW/DW/TAC every committed page version already exists on
        disk, so detaching is just forgetting the mapping.  Designs whose
        SSD can hold the *only* newest copy of a page (LC, and the
        related-work exclusive/rotating caches) must first make those
        versions durable on disk — :meth:`_pre_detach` forces the WAL and
        redoes them from the log, or raises :class:`RecoveryError` if the
        log was truncated past them (the §3.2 sharp-checkpoint
        correctness argument, machine-checked).

        Concurrent callers (every I/O that observes the death) coalesce
        onto one detach; later callers wait for its completion.
        """
        if self._detach_started:
            yield from self._await_detach()
            return
        self._detach_started = True
        self.detached = True
        started = self.env.now
        dropped = self.used_frames
        try:
            yield from self._pre_detach()
        finally:
            # Complete the detach even when _pre_detach raises (log
            # truncated past a dirty page): waiters must not hang while
            # the RecoveryError propagates.
            self._clear_ssd_state()
            if self._tracer.enabled:
                self._tracer.instant(
                    "ssd_detached", "fault", "faults",
                    {"reason": reason, "dropped_frames": dropped,
                     "redo_pages": self.stats.detach_redo_pages})
            self._detach_complete.succeed()

    def _pre_detach(self):
        """Process step: make SSD-only page versions durable on disk.

        Any valid dirty record newer than disk holds the only non-log
        copy of its version.  The WAL is forced, then each such page is
        redone to disk from the durable log in concurrent waves.  If the
        log no longer covers one of them (truncated by a checkpoint that
        should have flushed the page first), committed data is gone and
        :class:`RecoveryError` is raised.
        """
        targets = [(r.page_id, r.version) for r in self.table.occupied_records()
                   if r.valid and r.dirty
                   and r.version > self.disk.disk_version(r.page_id)]
        if not targets:
            return
        yield from self.wal.force(self.wal.tail_lsn, ctx=RECOVERY_CTX)
        durable: dict = {}
        for rec in self.wal.records_since(-1):
            if rec.page_id >= 0 and rec.version > durable.get(rec.page_id, -1):
                durable[rec.page_id] = rec.version
        lost = [(pid, v) for pid, v in targets if durable.get(pid, -1) < v]
        if lost:
            raise RecoveryError(
                f"SSD died holding the only copy of {len(lost)} dirty "
                f"pages whose log records were truncated, "
                f"e.g. {lost[:5]}: cannot degrade without losing "
                f"committed data")
        started = self.env.now
        for wave_start in range(0, len(targets), DEGRADE_BATCH):
            wave = targets[wave_start:wave_start + DEGRADE_BATCH]
            pending = [
                self.env.process(self.disk.write(pid, version,
                                                 sequential=False,
                                                 ctx=RECOVERY_CTX))
                for pid, version in wave
            ]
            yield self.env.all_of(pending)
            self.stats.detach_redo_pages += len(wave)
        if self._tracer.enabled:
            self._tracer.complete("degrade_redo", started, self.env.now,
                                  "fault", "faults",
                                  {"pages": len(targets)})

    def _clear_ssd_state(self) -> None:
        """Forget the mapping (detach / cold restart)."""
        self.table.clear()
        self.clean_heap.clear()
        self.dirty_heap.clear()

    # ------------------------------------------------------------------
    # Crash / restart hooks
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """Volatile state is lost.  The SSD's *content* survives, but the
        paper's designs keep the mapping only in RAM, so a cold restart
        discards it; the warm-restart extension retains clean frames."""
        if not self.config.warm_restart:
            self._clear_ssd_state()
            return
        for record in list(self.table.occupied_records()):
            if not record.valid or record.dirty:
                self._drop_record(record)

    def crash_reset(self) -> None:
        """Hard-crash restart (the crash-point harness).

        The event wipe killed any in-flight detach with the rest of the
        world; the detach-completion event belongs to those dead waiters
        and must be rebuilt.  A detached SSD stays detached across the
        crash — the device is still dead.
        """
        self.on_crash()
        if self._detach_started and not self.detached:
            self.detached = True
        self._detach_started = self.detached
        self._detach_complete = self.env.event()
        if self.detached:
            self._detach_complete.succeed()

    def on_restart(self, last_checkpoint_lsn: int) -> None:
        """After redo: drop kept SSD frames that redo made stale."""
        if not self.config.warm_restart:
            return
        for record in list(self.table.occupied_records()):
            if record.version != self.disk.disk_version(record.page_id):
                self._drop_record(record)

    # ------------------------------------------------------------------
    # Invariant checking (Figure 3), used by the property tests
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the Figure 3 page-copy relationships hold right now."""
        for record in self.table.occupied_records():
            if not record.valid:
                continue
            disk_version = self.disk.disk_version(record.page_id)
            if record.dirty:
                assert record.version >= disk_version, (
                    f"dirty SSD copy older than disk: {record!r} "
                    f"vs disk v{disk_version}")
            else:
                assert record.version == disk_version, (
                    f"clean SSD copy differs from disk: {record!r} "
                    f"vs disk v{disk_version}")
            if self.bp is not None:
                frame = self.bp.get_resident(record.page_id)
                if frame is not None:
                    assert frame.version == record.version, (
                        f"memory v{frame.version} != SSD v{record.version} "
                        f"for page {record.page_id}")


class NoSsdManager(SsdManagerBase):
    """The unmodified engine: no SSD, dirty evictions go to disk."""

    __slots__ = ()

    name = "noSSD"

    def __init__(self, env: Environment, device: Ssd, disk: DiskManager,
                 wal: WriteAheadLog, config: Optional[SsdDesignConfig] = None,
                 admission: Optional[AdmissionPolicy] = None,
                 telemetry=None):
        config = config or SsdDesignConfig(ssd_frames=0)
        super().__init__(env, device, disk, wal, config, admission,
                         telemetry=telemetry)

    def try_read(self, page_id: int, ctx=None):
        return None
        yield  # pragma: no cover - makes this a generator

    def on_evict_clean(self, frame: Frame):
        return
        yield  # pragma: no cover - makes this a generator

    def on_evict_dirty(self, frame: Frame):
        yield from self.disk.write(frame.page_id, frame.version,
                                   sequential=False, ctx=EVICTION_CTX)

    def invalidate(self, page_id: int) -> None:
        pass

    def trim_plan(self, wanted: Sequence[int]) -> TrimPlan:
        if not wanted:
            return TrimPlan()
        return TrimPlan(disk_start=wanted[0],
                        disk_count=wanted[-1] - wanted[0] + 1)
