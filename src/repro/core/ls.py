"""The log-structured (LS) design family (ROADMAP item 2, DESIGN.md §10).

The paper's CW/DW/LC/TAC designs update the SSD cache with random
in-place page writes.  On modelled flash internals (``repro.storage.ftl``)
that traffic leaves GC victims full of valid pages and amplifies every
host write into several NAND writes.  LS instead lays the SSD buffer
pool out as a pool of append-only *segments* (LFS style):

* **Group-commit admission** — evicted pages stage into a batch; the
  batch flushes as a single *sequential* multi-page device write when it
  fills, when its timeout expires, or when the buffer pool's eviction
  pressure drains (:meth:`admission_flush_hint`).  Fresh admissions
  append to the *hot* open segment; when it fills, the next free
  segment opens.
* **Supersede-in-place mapping** — re-admitting a page appends a new log
  entry and marks the old record logically invalid; the in-DRAM hash
  always points at the newest entry, so the mapping tolerates the log's
  constant relocation.
* **Greedy segment cleaning with hot/cold separation** — space is
  reclaimed a whole segment at a time, and the victim is the *deadest*
  closed segment (fewest live entries), not the oldest.  Superseded and
  invalidated entries are dead and dropped; live entries relocate to a
  separate *cold* append stream (sequential read + sequential write, so
  the traffic stays log shaped), capped so every reclaim nets real
  space — a mostly-live victim evicts its least-recently-accessed
  entries instead.  Keeping relocated (proven-live) entries out of the
  hot stream lets hot segments turn fully dead, so most cleanings
  relocate nothing.  Entries holding the sole newest copy of a page are
  flushed to disk before being dropped.  The reclaimed segment is
  TRIMmed before reuse, which is exactly what keeps the FTL's own GC
  victims empty and the measured WAF at 1.0 ("How to Write to SSDs",
  PVLDB 2026).
* **Log replay on restart** — every log record carries its append
  epoch, so the on-flash layout is self-describing; the mapping is
  rebuilt by replaying records in epoch order, and entries whose
  version matches the redone disk become warm clean hits (the recovery
  benefit "Flash-Based Extended Cache", PVLDB 2012, measures).

Dirty handling follows LC's write-back contract: the SSD may hold the
only newest copy of a page, checkpoints drain every dirty entry, and SSD
death degrades through the shared WAL-redo detach path.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.core.ssd_manager import SsdManagerBase
from repro.core.ssd_buffer_table import SsdRecord
from repro.engine.page import Frame
from repro.faults.errors import IoFault
from repro.sim import Event
from repro.telemetry import CHECKPOINT_CTX, CLEANER_CTX, EVICTION_CTX

#: One staged admission: (page_id, version, dirty, rec_lsn).
_Entry = Tuple[int, int, bool, int]

#: One durable log record: an admission plus its append epoch — the
#: global write order a real log record header carries, and what makes
#: crash replay order-correct across multiple append streams.
_JournalEntry = Tuple[int, int, bool, int, int]


class _LogBatch:
    """One group-commit admission batch."""

    __slots__ = ("entries", "trigger", "done", "ok", "closed")

    def __init__(self, env: Any) -> None:
        self.entries: List[_Entry] = []
        #: Succeeds when the batch should flush early (full / hint).
        self.trigger: Event = env.event()
        #: Succeeds when the flush finished (``ok`` says how it went).
        self.done: Event = env.event()
        self.ok = False
        self.closed = False


class LogStructuredManager(SsdManagerBase):
    """LS: the SSD buffer pool as a pool of append-only segments."""

    __slots__ = ("_seg_pages", "_nseg", "_open", "_cold", "_free_segs",
                 "_seg_seq", "_next_seq", "_next_epoch", "_free_slots",
                 "_journal", "_batch", "_pending_batches", "_reclaim_busy",
                 "_cleaner_started", "_cleaner_wakeup", "_dirty_wakeup",
                 "_tm_batches", "_tm_batch_pages", "_tm_reclaims",
                 "_tm_reclaim_flushes", "_tm_relocations", "_tm_replays")

    name = "LS"

    #: Consecutive no-progress reclaim/drain rounds before failing loudly.
    _STALL_LIMIT = 64

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        nframes = self.config.ssd_frames
        #: Frames per segment (the last segment may be shorter).
        self._seg_pages = max(1, min(self.config.ls_segment_pages,
                                     nframes or 1))
        self._nseg = (nframes + self._seg_pages - 1) // self._seg_pages
        #: Hot append stream (fresh admissions): [segment, position].
        #: Hot entries die fast, so hot segments turn fully dead and
        #: clean for free.
        self._open: List[Any] = [None, 0]
        #: Cold append stream (cleaner relocations): proven-live entries
        #: stay packed together instead of polluting hot segments.
        self._cold: List[Any] = [None, 0]
        #: Free segments, reused FIFO (each was TRIMmed when freed).
        self._free_segs: List[int] = list(range(self._nseg))
        #: Allocation epoch per allocated segment (victim age proxy).
        self._seg_seq: Dict[int, int] = {}
        self._next_seq = 0
        #: Global append epoch: total order over journal entries.
        self._next_epoch = 0
        self._free_slots = nframes
        #: Durable per-frame log metadata (what a restart can replay).
        self._journal: Dict[int, _JournalEntry] = {}
        self._batch: Optional[_LogBatch] = None
        #: Batches staged or flushing (for checkpoint/LSN accounting).
        self._pending_batches: Set[_LogBatch] = set()
        #: Single-flight latch for segment cleaning.
        self._reclaim_busy: Optional[Event] = None
        self._cleaner_started = False
        self._cleaner_wakeup: Optional[Event] = None
        self._dirty_wakeup: Optional[Event] = None
        registry = self.telemetry.registry
        self._tm_batches = registry.counter(
            "ls_batches_total", "Group-commit admission batches flushed")
        self._tm_batch_pages = registry.counter(
            "ls_batch_pages_total", "Pages admitted through LS batches")
        self._tm_reclaims = registry.counter(
            "ls_reclaimed_segments_total",
            "Log segments reclaimed (greedy victim selection)")
        self._tm_reclaim_flushes = registry.counter(
            "ls_reclaim_dirty_flushes_total",
            "Newest-copy pages flushed to disk during segment cleaning")
        self._tm_relocations = registry.counter(
            "ls_relocated_entries_total",
            "Live entries re-appended to the log during segment cleaning")
        self._tm_replays = registry.counter(
            "ls_replayed_entries_total",
            "Log entries replayed into the mapping after a crash")

    @property
    def admission_fill_level(self) -> int:
        """Live entries only: dead log entries are reclaimable space."""
        return self.table.valid_count

    # ------------------------------------------------------------------
    # Segment geometry
    # ------------------------------------------------------------------

    @property
    def _head(self) -> int:
        """Next hot append position (diagnostics); -1 between segments."""
        if self._open[0] is None:
            return -1
        return self._seg_start(self._open[0]) + self._open[1]

    def _seg_start(self, seg: int) -> int:
        return seg * self._seg_pages

    def _seg_size(self, seg: int) -> int:
        return min(self._seg_pages,
                   self.config.ssd_frames - self._seg_start(seg))

    def _claim_frame(self, cold: bool = False) -> int:
        """Claim the next append slot (caller ensured free space).

        ``cold`` selects the relocation stream; fresh admissions use the
        hot stream.  Each stream opens the next free segment when its
        current one fills; a full segment closes immediately and becomes
        a cleaning candidate.  When the free pool is empty, the streams
        share whichever open segment still has room (degenerate tiny
        logs).
        """
        stream = self._cold if cold else self._open
        if stream[0] is None and not self._free_segs:
            stream = self._open if cold else self._cold
        if stream[0] is None:
            stream[0] = self._free_segs.pop(0)
            stream[1] = 0
            self._seg_seq[stream[0]] = self._next_seq
            self._next_seq += 1
        frame_no = self._seg_start(stream[0]) + stream[1]
        stream[1] += 1
        self._free_slots -= 1
        if stream[1] >= self._seg_size(stream[0]):
            stream[0] = None
        return frame_no

    # ------------------------------------------------------------------
    # Admission (group commit into the open segment)
    # ------------------------------------------------------------------

    def _cache_page(self, page_id: int, version: int, dirty: bool,
                    rec_lsn: int = 0,
                    ctx: Any = None) -> Generator[object, Any, bool]:
        """Process step: admit one page by appending a log entry.

        Same contract as the base implementation (which writes in
        place), but the write is staged into the current group-commit
        batch and the caller waits for the batch flush.
        """
        existing = self.table.lookup_valid(page_id)
        if existing is not None and (existing.version == version
                                     and existing.dirty == dirty):
            existing.record_access(self.env.now)
            self._reheap(existing)
            return True
        if self.detached:
            return False
        if self._throttled():
            self.stats.declined_throttle += 1
            self._tm_declined.inc()
            if existing is not None:
                self.stats.throttle_preserved += 1
                self._tm_throttle_preserved.inc()
            return False
        return (yield from self._append(page_id, version, dirty,
                                        rec_lsn))

    def _append(self, page_id: int, version: int, dirty: bool,
                rec_lsn: int) -> Generator[object, Any, bool]:
        """Process step: stage an entry and wait for its batch flush."""
        if self.config.ssd_frames == 0:
            return False
        batch = self._batch
        if batch is None or batch.closed:
            batch = _LogBatch(self.env)
            self._batch = batch
            self._pending_batches.add(batch)
            self.env.process(self._flush_batch(batch))
        batch.entries.append((page_id, version, dirty, rec_lsn))
        if len(batch.entries) >= min(self.config.ls_batch_pages,
                                     self.config.ssd_frames):
            self._close_batch(batch)
        yield batch.done
        return batch.ok

    def _close_batch(self, batch: _LogBatch) -> None:
        """Stop accepting entries and release the flush to proceed."""
        batch.closed = True
        if self._batch is batch:
            self._batch = None
        if not batch.trigger.triggered:
            batch.trigger.succeed()

    def admission_flush_hint(self) -> None:
        """Eviction pressure drained: flush the partial batch now."""
        batch = self._batch
        if batch is not None and batch.entries:
            self._close_batch(batch)

    def _flush_batch(self, batch: _LogBatch) -> Generator[object, Any, None]:
        """Process step: group-commit one batch into the open segment."""
        try:
            if not batch.trigger.triggered:
                yield self.env.any_of([
                    batch.trigger,
                    self.env.timeout(self.config.ls_batch_timeout)])
            self._close_batch(batch)
            if self._detach_started or not batch.entries:
                return
            npages = len(batch.entries)
            yield from self._ensure_log_space(npages)
            if self._detach_started or self._free_slots < npages:
                return
            frames = self._install_entries(batch)
            ok = yield from self._write_frame_runs(frames)
            if ok:
                batch.ok = True
                self._tm_batches.inc()
                self._tm_batch_pages.inc(npages)
                if any(entry[2] for entry in batch.entries):
                    self._after_dirty_cached()
            else:
                self._roll_back(frames)
        finally:
            # Waiters must never hang, whatever path got us here.
            self._pending_batches.discard(batch)
            if not batch.done.triggered:
                batch.done.succeed()

    def _install_entries(self, batch: _LogBatch) -> List[int]:
        """Claim append slots and bind the batch's entries.

        Runs without yielding: space was ensured synchronously before
        the call, so the claimed frames are guaranteed free.
        """
        now = self.env.now
        frames: List[int] = []
        for page_id, version, dirty, rec_lsn in batch.entries:
            frame_no = self._claim_frame()
            old = self.table.lookup(page_id)
            if old is not None and old.occupied:
                # Supersede in place: the old entry dies where it lies
                # and frees only when its segment gets cleaned.
                self.clean_heap.remove(old)
                self.dirty_heap.remove(old)
                self.table.invalidate_logical(old)
            record = self.table.take_frame(frame_no)
            self.table.install(record, page_id, version, dirty, now,
                               rec_lsn=rec_lsn)
            self._reheap(record)
            self._journal[frame_no] = (page_id, version, dirty, rec_lsn,
                                       self._next_epoch)
            self._next_epoch += 1
            frames.append(frame_no)
            self.stats.writes += 1
            self._tm_writes.inc()
            if self._tracer.enabled:
                self._tracer.instant("admit", "ssd", "ssd_manager",
                                     {"page": page_id, "dirty": dirty})
        self._maybe_wake_cleaner()
        return frames

    def _roll_back(self, frames: List[int]) -> None:
        """The device write failed: the frames hold nothing after all.

        Log discipline still applies — the slots stay consumed (dead)
        until their segment gets cleaned; only their contents are
        disowned.  Waiters see ``ok=False`` and fall back to disk, so no
        data is stranded.
        """
        for frame_no in frames:
            record = self.table.records[frame_no]
            if record.occupied and record.valid:
                self.clean_heap.remove(record)
                self.dirty_heap.remove(record)
                self.table.invalidate_logical(record)
            self._journal.pop(frame_no, None)

    def _stripe(self, address: int, count: int) -> List[Tuple[int, int]]:
        """Split one contiguous run across the device's channels.

        A monolithic N-page request occupies a single flash channel for
        N page-times; issuing the run as parallel sequential chunks
        keeps the addressing log-shaped while using the parallelism the
        paper's multi-channel card actually has (and that the in-place
        designs get for free from independent 1-page writes).
        """
        channels = max(1, self.device.channels.capacity)
        chunk = -(-count // channels)
        return [(address + offset, min(chunk, count - offset))
                for offset in range(0, count, chunk)]

    def _write_frame_runs(self,
                          frames: List[int]) -> Generator[object, Any, bool]:
        """Process step: sequential device writes over claimed frames.

        Claims are contiguous within a segment; a batch that crossed
        into a fresh segment writes (at most) two runs.  Each run is
        striped over the channels and issued concurrently.
        """
        runs: List[List[int]] = []
        for frame_no in frames:
            if runs and runs[-1][0] + runs[-1][1] == frame_no:
                runs[-1][1] += 1
            else:
                runs.append([frame_no, 1])
        pieces = [piece for address, count in runs
                  for piece in self._stripe(address, count)]
        pending = [self.env.process(self._ssd_io(
            lambda address=address, count=count: self.device.write(
                address, count, random=False, ctx=EVICTION_CTX)))
            for address, count in pieces]
        results = yield self.env.all_of(pending)
        return all(results.values())

    # ------------------------------------------------------------------
    # Eviction hook (same fallback contract as LC)
    # ------------------------------------------------------------------

    def on_evict_dirty(self, frame: Frame) -> Generator[object, Any, None]:
        """Append the dirty page to the log; fall back to disk if not.

        Falls back when: admission rejects the page, a checkpoint is in
        progress (§3.2: no new dirty pages while one runs), the SSD is
        throttled or detached, or the batch flush failed.
        """
        checkpointing = self.bp is not None and self.bp.checkpoint_active
        if not checkpointing and self.admission.qualifies(
                frame, self.admission_fill_level):
            cached = yield from self._cache_page(
                frame.page_id, frame.version, dirty=True,
                rec_lsn=max(0, frame.rec_lsn), ctx=EVICTION_CTX)
            if cached:
                return
        self.stats.fallback_disk_writes += 1
        self._tm_fallback.inc()
        yield from self.disk.write(frame.page_id, frame.version,
                                   sequential=False, ctx=EVICTION_CTX)

    def invalidate(self, page_id: int) -> None:
        """A buffered page was dirtied: the log entry dies in place."""
        record = self.table.lookup(page_id)
        if record is not None and record.occupied and record.valid:
            self.stats.invalidations += 1
            self._tm_invalidations.inc()
            self.clean_heap.remove(record)
            self.dirty_heap.remove(record)
            self.table.invalidate_logical(record)

    # ------------------------------------------------------------------
    # Greedy segment cleaning (GC-aware eviction)
    # ------------------------------------------------------------------

    @property
    def _reclaim_low_water(self) -> int:
        """Free-slot count below which the background reclaimer runs."""
        return min(max(2 * self.config.ls_segment_pages,
                       2 * self.config.ls_batch_pages),
                   max(1, self.config.ssd_frames // 8))

    def start_cleaner(self) -> None:
        """Launch the background reclaimer and dirty cleaner (idempotent).

        Segment cleaning is expensive — a sequential segment read plus a
        relocation write — so doing it on demand inside the admission
        path serialises every eviction behind it.  The reclaimer keeps
        free space above a low-water mark instead;
        :meth:`_ensure_log_space` remains the synchronous backstop for
        bursts that outrun it.  The dirty cleaner mirrors LC's λ policy:
        it drains the dirty heap *in place* (SSD read + disk write, no
        log movement, so no WAF impact), which keeps dirty entries from
        piling up in cold segments where flushing them would put 8 ms
        random disk writes inside the space-reclaim pipeline.
        """
        if not self._cleaner_started:
            self._cleaner_started = True
            self._cleaner_wakeup = self.env.event()
            self._dirty_wakeup = self.env.event()
            self.env.process(self._cleaner_loop())
            self.env.process(self._dirty_cleaner_loop())

    def _maybe_wake_cleaner(self) -> None:
        if (self._cleaner_wakeup is not None
                and not self._cleaner_wakeup.triggered
                and self._free_slots < self._reclaim_low_water):
            self._cleaner_wakeup.succeed()

    def _after_dirty_cached(self) -> None:
        if (self._dirty_wakeup is not None
                and not self._dirty_wakeup.triggered
                and self.table.dirty_count > self.config.dirty_limit_frames):
            self._dirty_wakeup.succeed()

    def _dirty_cleaner_loop(self) -> Generator[object, Any, None]:
        while True:
            if self._detach_started:
                return
            if self.table.dirty_count <= self.config.dirty_limit_frames:
                self._dirty_wakeup = self.env.event()
                yield self._dirty_wakeup
                continue
            target = self.config.clean_target_frames
            empty_rounds = 0
            while (self.table.dirty_count > target
                   and not self._detach_started):
                wave = []
                while len(wave) < self.config.cleaner_concurrency:
                    record = self.dirty_heap.pop()
                    if record is None:
                        break
                    if not (record.occupied and record.valid
                            and record.dirty):
                        continue
                    if (record.version
                            <= self.disk.disk_version(record.page_id)):
                        # Disk already has this version: clean by fiat.
                        self.table.set_dirty(record, False)
                        self.clean_heap.push(record)
                        continue
                    wave.append((record, record.page_id, record.version))
                if not wave:
                    empty_rounds += 1
                    if empty_rounds >= self._STALL_LIMIT:
                        break
                    yield self.env.timeout(0.001)
                    continue
                pending = [self.env.process(self._flush_entry(r, pid, ver))
                           for r, pid, ver in wave]
                results = yield self.env.all_of(pending)
                # Entries that stayed dirty (fault, or superseded and
                # re-dirtied mid-flight) go back in the heap so the
                # cleaners and checkpoints can still find them.
                for record, pid, ver in wave:
                    if (record.occupied and record.valid and record.dirty
                            and record.page_id == pid):
                        self.dirty_heap.push(record)
                if any(results.values()):
                    empty_rounds = 0
                else:
                    empty_rounds += 1
                    if empty_rounds >= self._STALL_LIMIT:
                        break
                    yield self.env.timeout(0.001)

    def _cleaner_loop(self) -> Generator[object, Any, None]:
        # Clean far enough past the low-water mark that the free pool
        # holds whole segments: admission batches then never wait in
        # _ensure_log_space, and the cold relocation stream gets real
        # segments instead of falling back to the hot one.
        high = self._reclaim_low_water + 3 * self.config.ls_segment_pages
        while True:
            if self._detach_started:
                return
            if self._free_slots >= self._reclaim_low_water:
                self._cleaner_wakeup = self.env.event()
                yield self._cleaner_wakeup
                continue
            stalled = 0
            while (self._free_slots < high and not self._detach_started
                   and self.table.used_count > 0):
                before = self._free_slots
                yield from self._reclaim_segment()
                if self._free_slots > before:
                    stalled = 0
                    continue
                stalled += 1
                if stalled >= self._STALL_LIMIT:
                    break
                yield self.env.timeout(0.001)

    def _ensure_log_space(self,
                          needed: int) -> Generator[object, Any, None]:
        """Process step: clean segments until ``needed`` slots fit."""
        stalled = 0
        while (self._free_slots < needed and not self._detach_started
               and self.table.used_count > 0):
            before = self._free_slots
            yield from self._reclaim_segment()
            if self._free_slots > before:
                stalled = 0
                continue
            stalled += 1
            if stalled >= self._STALL_LIMIT:
                raise RuntimeError(
                    f"LS reclaim stalled: {stalled} rounds without "
                    f"progress, free={self._free_slots}, need={needed}")
            yield self.env.timeout(0.001)

    def _reclaim_segment(self) -> Generator[object, Any, None]:
        """Process step: single-flight wrapper around segment cleaning."""
        if self._reclaim_busy is not None:
            # Another flush is already reclaiming; piggyback on it.
            yield self._reclaim_busy
            return
        self._reclaim_busy = self.env.event()
        try:
            yield from self._do_reclaim()
        finally:
            busy, self._reclaim_busy = self._reclaim_busy, None
            if busy is not None and not busy.triggered:
                busy.succeed()

    def _pick_victim(self) -> Optional[int]:
        """Greedy victim selection: the deadest closed segment.

        Dead entries (superseded / invalidated) are pure reclaimable
        space; cleaning the segment with the fewest live entries frees
        the most slots per unit of relocation work and keeps the live
        fraction of the log — the actual cache capacity — high.  Ties
        break toward the oldest segment (lowest sequence number).  Open
        segments are exempt unless nothing else is allocated
        (degenerate tiny logs).
        """
        open_segs = {self._open[0], self._cold[0]}
        closed = [seg for seg in self._seg_seq if seg not in open_segs]
        candidates = closed or [seg for seg in self._seg_seq]
        best: Optional[int] = None
        best_key: Optional[Tuple[int, int]] = None
        for seg in candidates:
            seq = self._seg_seq[seg]
            start = self._seg_start(seg)
            live = 0
            for frame_no in range(start, start + self._seg_size(seg)):
                record = self.table.records[frame_no]
                if record.occupied and record.valid:
                    live += 1
            key = (live, seq)
            if best_key is None or key < best_key:
                best, best_key = seg, key
        return best

    def _do_reclaim(self) -> Generator[object, Any, None]:
        """Process step: clean one whole segment (greedy victim).

        LFS-style compaction with capacity-driven eviction.  Superseded
        and invalidated entries are dead and simply dropped — reclaiming
        them is what keeps the log from wasting capacity on corpses, and
        greedy victim selection means most reclaims find segments that
        are mostly corpses.  Live entries *relocate* to the open segment
        (one sequential segment read plus one sequential append, so
        device-level WAF stays at 1), except that survivors are capped
        so every round nets real space: when even the deadest segment is
        mostly live (true capacity pressure), its least-recently-accessed
        entries are evicted instead.  Relocation preserves each entry's
        true ``last_access``, so the drop decision approximates LRU
        rather than FIFO.  Entries holding the sole newest copy of
        their page are flushed to disk before being dropped.  The freed
        segment is TRIMmed so the FTL's own GC finds it empty.
        """
        victim = self._pick_victim()
        if victim is None:
            return
        start = self._seg_start(victim)
        size = self._seg_size(victim)
        for stream in (self._open, self._cold):
            if victim == stream[0]:
                # Degenerate tiny log: close the stream and forfeit the
                # unclaimed remainder until the reclaim below re-frees
                # it (keeps ``_free_slots`` honest across the yields).
                self._free_slots -= size - stream[1]
                stream[0] = None
        frames = list(range(start, start + size))
        started = self.env.now
        live = [self.table.records[f] for f in frames
                if (self.table.records[f].occupied
                    and self.table.records[f].valid)]
        live.sort(key=lambda r: r.last_access, reverse=True)
        keep: Set[int] = {r.frame_no for r in live[:size // 2]}
        # Relocating entries move with their dirty flag intact — the
        # background dirty cleaner flushes them on its own λ schedule.
        # Only entries about to be *dropped* while holding the sole
        # newest copy of their page must reach disk first (the backstop
        # that makes capacity eviction safe).  With greedy victims these
        # are rare, which keeps 8 ms random disk writes out of the
        # reclaim pipeline — the pipeline every admission batch queues
        # behind under space pressure.
        targets = []
        for record in live[size // 2:]:
            if (record.dirty and record.version
                    > self.disk.disk_version(record.page_id)):
                targets.append((record, record.page_id, record.version))
        flushed = 0
        for wave_start in range(0, len(targets),
                                self.config.cleaner_concurrency):
            wave = targets[wave_start:wave_start
                           + self.config.cleaner_concurrency]
            pending = [self.env.process(self._flush_entry(r, pid, ver))
                       for r, pid, ver in wave]
            results = yield self.env.all_of(pending)
            if not all(results.values()):
                # Fault or device death mid-flush: abandon this round
                # with the segment intact; the caller retries (or the
                # detach redo takes over).
                return
            flushed += len(wave)
        if self._detach_started:
            return
        if keep:
            ok = yield from self._read_live_runs(keep)
            if not ok or self._detach_started:
                return
        # Capture survivors *after* the last yield: an entry may have
        # been superseded, invalidated, or cleaned while the flush and
        # read I/Os were in flight.  From here to the relocation write
        # everything runs without yielding.
        survivors: List[Tuple[int, int, bool, int, float]] = []
        relocating: Set[int] = set()
        for frame_no in frames:
            if frame_no not in keep:
                continue
            record = self.table.records[frame_no]
            if record.occupied and record.valid:
                survivors.append((record.page_id, record.version,
                                  record.dirty, record.rec_lsn,
                                  record.last_access))
                relocating.add(frame_no)
        dropped = 0
        for frame_no in frames:
            record = self.table.records[frame_no]
            if record.occupied:
                if record.valid and frame_no not in relocating:
                    self.stats.evictions += 1
                    self._tm_evictions.inc()
                    dropped += 1
                self.clean_heap.remove(record)
                self.dirty_heap.remove(record)
                self.table.release(record)
            self._journal.pop(frame_no, None)
        self._free_slots += size
        self.device.trim(start, size)
        self._seg_seq.pop(victim, None)
        self._free_segs.append(victim)
        relocated = 0
        if survivors and not self._detach_started:
            now = self.env.now
            new_frames: List[int] = []
            for page_id, version, dirty, rec_lsn, last_access in survivors:
                frame_no = self._claim_frame(cold=True)
                old = self.table.lookup(page_id)
                if old is not None and old.occupied:
                    self.clean_heap.remove(old)
                    self.dirty_heap.remove(old)
                    self.table.invalidate_logical(old)
                record = self.table.take_frame(frame_no)
                self.table.install(record, page_id, version, dirty, now,
                                   rec_lsn=rec_lsn)
                # Relocation is not an access: keep the entry's true
                # recency so the next cleaning pass ranks it honestly.
                record.last_access = last_access
                self._reheap(record)
                self._journal[frame_no] = (page_id, version, dirty,
                                           rec_lsn, self._next_epoch)
                self._next_epoch += 1
                new_frames.append(frame_no)
            ok = yield from self._write_frame_runs(new_frames)
            if ok:
                relocated = len(survivors)
                self._tm_relocations.inc(relocated)
            else:
                self._roll_back(new_frames)
        self.stats.cleaner_pages += flushed
        self.stats.cleaner_ios += 1
        self._tm_reclaims.inc()
        if flushed:
            self._tm_reclaim_flushes.inc(flushed)
        if self._tracer.enabled:
            self._tracer.complete(
                "log_reclaim", started, self.env.now, "cleaner", "cleaner",
                {"segment": victim, "segment_start": start, "pages": size,
                 "dirty_flushed": flushed, "valid_dropped": dropped,
                 "relocated": relocated})

    def _read_live_runs(self,
                        keep: Set[int]) -> Generator[object, Any, bool]:
        """Process step: sequentially read a victim's surviving frames.

        These are *must* reads: a survivor may hold the only newest
        copy of its page, and giving up would strand it.  Only device
        death fails the read, and then the detach redo takes over.
        """
        runs: List[List[int]] = []
        for frame_no in sorted(keep):
            if runs and runs[-1][0] + runs[-1][1] == frame_no:
                runs[-1][1] += 1
            else:
                runs.append([frame_no, 1])
        pieces = [piece for address, count in runs
                  for piece in self._stripe(address, count)]
        pending = [self.env.process(self._ssd_io(
            lambda address=address, count=count: self.device.read(
                address, count, random=False, ctx=CLEANER_CTX),
            must=True)) for address, count in pieces]
        results = yield self.env.all_of(pending)
        return all(results.values())

    def _flush_entry(self, record: SsdRecord, page_id: int, version: int,
                     ctx: Any = CLEANER_CTX) -> Generator[object, Any, bool]:
        """Process step: copy one newest-copy log entry back to disk.

        SSD -> memory -> disk, like the LC cleaner.  The read is a
        *must* read: this is the only non-log copy of the version.
        Returns True when the disk write landed.
        """
        ok = yield from self._ssd_read_frame(record.frame_no, must=True,
                                             ctx=ctx)
        if not ok:
            return False
        try:
            yield from self.disk.write(page_id, version, sequential=False,
                                       ctx=ctx)
        except IoFault:
            return False
        # Mark clean only if the record still describes what we wrote —
        # it may have been superseded or invalidated mid-flight.
        if (record.valid and record.dirty and record.page_id == page_id
                and record.version == version):
            self.table.set_dirty(record, False)
            self.clean_heap.push(record)
        return True

    # ------------------------------------------------------------------
    # Checkpoint integration (§3.2, same rule as LC)
    # ------------------------------------------------------------------

    def oldest_dirty_rec_lsn(self) -> Optional[int]:
        """Include entries still staged in unflushed batches."""
        lsns = [r.rec_lsn for r in self.table.occupied_records()
                if r.valid and r.dirty]
        for batch in self._pending_batches:
            lsns.extend(rec_lsn for _, _, dirty, rec_lsn in batch.entries
                        if dirty)
        return min(lsns) if lsns else None

    def on_checkpoint(self) -> Generator[object, Any, None]:
        """Land staged batches, then flush every dirty log entry."""
        batch = self._batch
        if batch is not None and batch.entries:
            self._close_batch(batch)
        for pending in list(self._pending_batches):
            if not pending.done.triggered:
                yield pending.done
        empty_rounds = 0
        while self.table.dirty_count > 0:
            if self._detach_started:
                # The detach redo makes the dirty pages durable, which
                # is all this phase needs; wait rather than race it.
                yield from self._await_detach()
                break
            targets = []
            for record in self.table.occupied_records():
                if record.valid and record.dirty:
                    targets.append((record, record.page_id, record.version))
                    if len(targets) >= self.config.cleaner_concurrency:
                        break
            progressed = 0
            flush_wave = []
            for record, page_id, version in targets:
                if version > self.disk.disk_version(page_id):
                    flush_wave.append((record, page_id, version))
                else:
                    # Disk already has this version: clean by fiat.
                    self.table.set_dirty(record, False)
                    self.clean_heap.push(record)
                    progressed += 1
            if flush_wave:
                pending_ios = [
                    self.env.process(
                        self._flush_entry(r, pid, ver, ctx=CHECKPOINT_CTX))
                    for r, pid, ver in flush_wave]
                results = yield self.env.all_of(pending_ios)
                landed = sum(1 for ok in results.values() if ok)
                progressed += landed
                self.stats.checkpoint_ssd_flushes += landed
            if progressed == 0:
                empty_rounds += 1
                if empty_rounds >= self._STALL_LIMIT:
                    raise RuntimeError(
                        f"LS checkpoint drain stalled: "
                        f"dirty_count={self.table.dirty_count}")
                yield self.env.timeout(0.001)
            else:
                empty_rounds = 0

    # ------------------------------------------------------------------
    # Detach / crash / restart
    # ------------------------------------------------------------------

    def _clear_ssd_state(self) -> None:
        super()._clear_ssd_state()
        self._open = [None, 0]
        self._cold = [None, 0]
        self._free_segs = list(range(self._nseg))
        self._seg_seq.clear()
        self._next_seq = 0
        self._next_epoch = 0
        self._free_slots = self.config.ssd_frames
        self._journal.clear()

    def on_crash(self) -> None:
        """Rebuild the mapping by replaying the on-flash log.

        The in-DRAM hash dies with the crash, but the log records are on
        the device (modelled by ``_journal``), each carrying its append
        epoch — the total write order, which segment order alone cannot
        give once relocations append to a second stream.  Replaying in
        epoch order makes later entries supersede earlier ones exactly
        as the live path did.  Stale/uncommitted entries are weeded out
        by :meth:`on_restart` once redo has settled what disk truth is.
        Idempotent — the crash harness may call it more than once per
        crash.
        """
        self.table.clear()
        self.clean_heap.clear()
        self.dirty_heap.clear()
        if (self.detached or self._detach_started
                or self.config.ssd_frames == 0):
            return
        replayed = 0
        for frame_no, entry in sorted(self._journal.items(),
                                      key=lambda item: item[1][4]):
            page_id, version, dirty, rec_lsn, _epoch = entry
            prev = self.table.lookup(page_id)
            if prev is not None and prev.occupied:
                self.table.invalidate_logical(prev)
            record = self.table.take_frame(frame_no)
            self.table.install(record, page_id, version, dirty, 0.0,
                               rec_lsn=rec_lsn)
            replayed += 1
        if replayed:
            self._tm_replays.inc(replayed)
            if self._tracer.enabled:
                self._tracer.instant("ls_log_replay", "ssd", "ssd_manager",
                                     {"entries": replayed})

    def on_restart(self, last_checkpoint_lsn: int) -> None:
        """After redo: keep replayed entries that match disk, as clean.

        This is LS's free warm restart: a log entry whose version equals
        the recovered disk version is a correct clean cache hit.  Torn
        batch tails (written to the journal but never made durable) and
        uncommitted versions necessarily differ from the redone disk and
        die here, which is what makes replaying them in
        :meth:`on_crash` safe.
        """
        for record in list(self.table.occupied_records()):
            if not record.valid:
                continue
            if record.version == self.disk.disk_version(record.page_id):
                self.table.set_dirty(record, False)
                self.clean_heap.push(record)
            else:
                self.clean_heap.remove(record)
                self.dirty_heap.remove(record)
                self.table.invalidate_logical(record)

    def crash_reset(self) -> None:
        """Hard-crash restart: staged batches, the reclaim latch, and
        the reclaimer process died with the event queue; the journal and
        segment layout (device-durable) survive and are replayed by
        ``on_crash`` via the base implementation."""
        self._batch = None
        self._pending_batches.clear()
        self._reclaim_busy = None
        self._cleaner_started = False
        self._cleaner_wakeup = None
        self._dirty_wakeup = None
        super().crash_reset()
        if not self.detached:
            self.start_cleaner()
