"""Generator-based simulation processes.

A process wraps a Python generator.  Each ``yield`` hands the kernel an
:class:`~repro.sim.events.Event` to wait for; the process resumes when the
event triggers, receiving ``event.value`` as the result of the ``yield``
expression (or having the event's exception raised at the yield point).

A :class:`Process` is itself an event: it triggers when the generator
returns, with the generator's return value.

:meth:`Process._resume` is the single hottest function in the simulator —
every event a process waits on funnels through it once — so its common
path (send a value in, get the next wait target out, subscribe) touches
only slot attributes and locals.
"""

from __future__ import annotations

from types import GeneratorType
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import _PENDING, Event, Interrupt, SimulationError

if TYPE_CHECKING:
    from repro.sim.environment import Environment


class Process(Event):
    """A running simulation process (and the event of its completion)."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment",
                 generator: Generator[Any, Any, Any]) -> None:
        # Exact-type check first: real generators are the only thing the
        # engine ever spawns, so the duck-typing fallback is cold.
        if type(generator) is not GeneratorType and \
                not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._generator = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume the process at time `now`.  Inlined
        # construct-subscribe-succeed of a throwaway Event — one per
        # spawned process, so the generic pending-state check and the
        # separate append are dead weight here.
        bootstrap = Event.__new__(Event)
        bootstrap.env = env
        bootstrap.callbacks = [self._resume]
        bootstrap._ok = True
        bootstrap._value = None
        env._seq = seq = env._seq + 1
        env._push((env._now, seq, bootstrap))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        interrupt_event = Event(self.env)
        assert interrupt_event.callbacks is not None
        interrupt_event.callbacks.append(self._resume)
        interrupt_event.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        env = self.env
        generator = self._generator
        send = generator.send
        env._active_process = self
        try:
            while True:
                try:
                    if event is None or event._ok:
                        target = send(None if event is None
                                      else event._value)
                    else:
                        target = generator.throw(event._value)
                except StopIteration as stop:
                    self._target = None
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self._target = None
                    self._fail_or_crash(exc)
                    return

                # Everything the engine yields is an Event; fetching its
                # callback list doubles as the type check (AttributeError
                # on a non-event is the cold error path).
                try:
                    target_callbacks = target.callbacks
                except AttributeError:
                    exc = SimulationError(
                        f"process yielded a non-event: {target!r}")
                    self._target = None
                    try:
                        generator.throw(exc)
                    except StopIteration as stop:
                        self.succeed(stop.value)
                        return
                    except BaseException as inner:
                        self._fail_or_crash(inner)
                        return
                    continue

                if target_callbacks is None:
                    # Already processed: loop immediately with its value.
                    event = target
                    continue
                self._target = target
                target_callbacks.append(self._resume)
                return
        finally:
            env._active_process = None

    def _fail_or_crash(self, exc: BaseException) -> None:
        """Propagate an uncaught process exception.

        If someone is waiting on this process, the exception flows to them
        via ``fail``; otherwise it would vanish silently, so the kernel
        records it as a crash that ``Environment.run`` re-raises.
        """
        if self.callbacks:
            self.fail(exc)
        else:
            self._ok = False
            self._value = exc
            self.env._crashed(self, exc)
