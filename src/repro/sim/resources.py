"""Shared-resource primitives: FIFO server pools and item stores."""

from __future__ import annotations

from collections import deque
from types import TracebackType
from typing import TYPE_CHECKING, Any, Deque, List, Optional, Type

from repro.sim.events import Event

if TYPE_CHECKING:
    from repro.sim.environment import Environment


class Request(Event):
    """A pending claim on one unit of a :class:`Resource`.

    Usable as a context manager so the unit is always released::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc_val: Optional[BaseException],
                 exc_tb: Optional[TracebackType]) -> None:
        self.resource.release(self)


class Resource:
    """A pool of ``capacity`` identical servers with a FIFO wait queue.

    Used to model device channels, worker slots, and latches.  The current
    queue length (:attr:`queue_len`) is exposed because the paper's SSD
    throttle-control optimization (§3.3.2) gates admission on the number of
    pending SSD I/Os.
    """

    __slots__ = ("env", "capacity", "_users", "_waiting")

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of units currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiting)

    @property
    def in_flight(self) -> int:
        """Held units plus waiting requests (total pending work)."""
        return len(self._users) + len(self._waiting)

    def request(self) -> Request:
        """Claim one unit; the returned event triggers when granted."""
        return Request(self)

    def _request(self, req: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._waiting.append(req)

    def release(self, req: Request) -> None:
        """Return a unit to the pool, waking the next waiter if any.

        Releasing an ungranted (still-waiting) request cancels it.
        Releasing twice is a no-op, which makes the context-manager form
        safe even if the holder released early.
        """
        try:
            self._users.remove(req)
        except ValueError:
            try:
                self._waiting.remove(req)
            except ValueError:
                pass
            return
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed()


class StoreGet(Event):
    """Pending retrieval of one item from a :class:`Store`."""

    __slots__ = ()


class StorePut(Event):
    """Completed insertion of one item into a :class:`Store`."""

    __slots__ = ()


class Store:
    """An unbounded FIFO queue of items with blocking ``get``.

    Used as a message queue between processes (e.g. the buffer manager
    handing eviction work to the lazy-cleaning thread).
    """

    __slots__ = ("env", "items", "_getters")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()

    def put(self, item: Any) -> StorePut:
        """Add ``item``; wakes the oldest blocked getter, if any."""
        event = StorePut(self.env)
        event.succeed()
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)
        return event

    def get(self) -> StoreGet:
        """Event that triggers with the next item (FIFO order)."""
        event = StoreGet(self.env)
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
