"""Discrete-event simulation kernel.

A small, deterministic, generator-based discrete-event simulator in the
style of SimPy.  Every other subsystem in :mod:`repro` — the storage device
models, the buffer manager's asynchronous I/O, the lazy-cleaning thread,
checkpointing — runs as processes on this kernel, so all reported times and
throughputs are *virtual* time, independent of the host machine.

Public API::

    env = Environment()
    def worker(env):
        yield env.timeout(5)
        return "done"
    proc = env.process(worker(env))
    env.run()
    assert env.now == 5 and proc.value == "done"
"""

from repro.sim.environment import Environment
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.wheel import (KERNELS, TimerWheel, WheelEnvironment,
                             make_environment)

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "KERNELS",
    "Process",
    "Resource",
    "Store",
    "TimerWheel",
    "Timeout",
    "WheelEnvironment",
    "make_environment",
]
