"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in virtual time.
Processes wait on events by ``yield``-ing them; when the event is triggered
the kernel resumes every waiting process with the event's value (or raises
the event's exception inside the process).

The classes here are on the hottest path of the simulator (every I/O,
latch wait, and client think-time is an event), so they are written for
throughput: ``__slots__`` everywhere, and :meth:`Event.succeed` /
:meth:`Event.fail` push straight through the environment's pre-bound
``_push`` (the heap's ``heappush`` or the timer wheel's ``push``)
instead of going through a scheduling call.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, Dict, Iterable, List,
                    Optional)

if TYPE_CHECKING:
    from repro.sim.environment import Environment

#: Sentinel for "event has not been given a value yet".
_PENDING: Any = object()


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait for.

    Life cycle: *pending* → *triggered* (scheduled on the event queue with a
    value or an exception) → *processed* (callbacks have run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value. Raises if the event is still pending."""
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq = seq = env._seq + 1
        env._push((env._now, seq, self))
        return self

    def settle(self, value: Any = None) -> "Event":
        """Trigger *and retire* an event nobody is waiting on.

        Equivalent to :meth:`succeed` immediately followed by the
        kernel's callback pass, minus the queue round-trip: the event
        ends up *processed* (``callbacks is None``) without ever being
        scheduled.  Only valid while the callback list is empty **and**
        no new subscriber can reach the event (e.g. it was already
        removed from whatever registry handed it out).  Skipping the
        schedule is order-preserving: every later sequence number shifts
        down uniformly, so the relative order of all real events is
        unchanged.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        assert not self.callbacks, "settle() on an event with waiters"
        self._ok = True
        self._value = value
        self.callbacks = None
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is raised inside every process that waits on the
        event.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        env = self.env
        env._seq = seq = env._seq + 1
        env._push((env._now, seq, self))
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + schedule: a Timeout is born triggered,
        # so the generic pending-state checks are dead weight here.
        self.env = env
        self.callbacks = []  # type: Optional[List[Callable[[Event], None]]]
        self._ok = True
        self._value = value
        self.delay = delay
        env._seq = seq = env._seq + 1
        env._push((env._now + delay, seq, self))

    @property
    def triggered(self) -> bool:
        return True


class _Condition(Event):
    """Base for events composed of several child events."""

    __slots__ = ("events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> Dict[Event, Any]:
        return {
            event: event.value
            for event in self.events
            if event.triggered and event.ok
        }


class AllOf(_Condition):
    """Triggers once every child event has triggered successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done == len(self.events)


class AnyOf(_Condition):
    """Triggers as soon as any child event triggers successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= 1
