"""The simulation environment: virtual clock plus event scheduler."""

from __future__ import annotations

import gc
from functools import partial
from heapq import heappop, heappush
from typing import (Any, Callable, Generator, Iterable, List, Optional,
                    Tuple, Union)

from repro.sim.events import AllOf, AnyOf, Event, SimulationError, Timeout
from repro.sim.process import Process


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Execution environment for a deterministic discrete-event simulation.

    Time is a float in *virtual seconds* starting at ``initial_time``.
    Events scheduled at the same instant are processed in scheduling order,
    which makes runs fully deterministic.

    The scheduler is the hottest code in the repository (every benchmark
    figure is millions of events), so the hot paths are hand-flattened:
    the tie-break sequence is a plain int (not an ``itertools.count``),
    event factories push onto the heap directly, and :meth:`run` inlines
    the :meth:`step` loop with the queue and heap functions hoisted into
    locals.  ``self._queue`` is mutated in place and never rebound —
    :meth:`wipe` relies on that, and so do the hoisted aliases in
    :meth:`run`.

    ``_push`` is the one indirection the event factories go through: a
    C-level ``partial(heappush, queue)`` here, the wheel's bound
    ``push`` on :class:`~repro.sim.wheel.WheelEnvironment` — which is
    how an alternative scheduler slots in behind the heap interface
    without a branch on the hot path.
    """

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "_crash",
                 "_push")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0  # same-instant tie-break, incremented per schedule
        self._push: Callable[[Tuple[float, int, Event]], None] = (
            partial(heappush, self._queue))
        self._active_process: Optional[Process] = None
        self._crash: Optional[BaseException] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Any, Any, Any]) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling / execution
    # ------------------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event for processing at ``now + delay``."""
        self._seq = seq = self._seq + 1
        self._push((self._now + delay, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event, advancing the clock to it."""
        try:
            when, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events remain") from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
            if self._crash is not None:
                crash, self._crash = self._crash, None
                raise crash

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        * ``until is None`` — run until no events remain.
        * ``until`` is a number — run until virtual time reaches it.
        * ``until`` is an :class:`Event` — run until that event is
          processed, then return its value (raising if it failed).
        """
        if until is None:
            stop_at, stop_event = float("inf"), None
        elif isinstance(until, Event):
            stop_at, stop_event = float("inf"), until
            if until.processed:
                if not until.ok:
                    raise until.value
                return until.value
        else:
            stop_at, stop_event = float(until), None
            if stop_at < self._now:
                raise ValueError(
                    f"until ({stop_at}) must not be before now ({self._now})")

        # The inlined step loop.  ``queue`` aliases self._queue (mutated in
        # place everywhere, including wipe()), so the alias stays valid
        # across callbacks that crash or wipe the environment.
        #
        # The cyclic collector is paused for the duration of the loop: a
        # run churns through millions of short-lived generators, events,
        # and schedule tuples, which keeps the generational thresholds
        # permanently tripped, while almost none of that garbage is
        # cyclic (finished processes drop their frames by refcount).
        # Pausing collection roughly halves end-to-end run wall time at
        # a few tens of MB of peak RSS; anything cyclic is reclaimed by
        # the re-enabled collector after the loop (and ``wipe()`` calls
        # ``gc.collect()`` explicitly, which works while paused).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            queue = self._queue
            pop = heappop
            if stop_event is None:
                # Run-until-time is the workload-driver case and covers
                # the overwhelming majority of events, so it gets its
                # own loop without the per-event stop-event probe.
                while queue:
                    if queue[0][0] > stop_at:
                        self._now = stop_at
                        return None
                    when, _, event = pop(queue)
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                        if self._crash is not None:
                            crash, self._crash = self._crash, None
                            raise crash
            else:
                while queue:
                    if stop_event.callbacks is None:
                        break
                    if queue[0][0] > stop_at:
                        self._now = stop_at
                        return None
                    when, _, event = pop(queue)
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                        if self._crash is not None:
                            crash, self._crash = self._crash, None
                            raise crash
        finally:
            if gc_was_enabled:
                gc.enable()

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "run() finished with the target event still pending")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value

        if stop_at != float("inf"):
            self._now = stop_at
        return None

    def wipe(self) -> None:
        """Discard every scheduled event (simulated power failure).

        Processes waiting on wiped events never resume: they are the
        in-flight work a crash destroys.  The clock does not move, and
        new processes can be started afterwards — this is what lets a
        crash-point harness dead-stop a system mid-I/O and then drive
        recovery on the same environment.

        Dropping the queue releases the last references to in-flight
        process generators; closing them (``GeneratorExit``) runs their
        ``finally`` blocks, which may ``succeed()`` events — scheduling
        wake-ups into the *post-crash* queue that would resurrect dead
        processes mid-recovery with their pre-crash local state.  The
        clear-and-collect loop discards those until no dying finalizer
        schedules anything more (``gc.collect`` also frees the
        waiter/event reference cycles non-queue-held processes sit in).
        """
        self._queue.clear()
        for _ in range(16):
            gc.collect()
            if not self._queue:
                break
            self._queue.clear()
        self._crash = None

    # ------------------------------------------------------------------
    # Crash handling (uncaught exceptions in un-awaited processes)
    # ------------------------------------------------------------------

    def _crashed(self, process: Process, exc: BaseException) -> None:
        self._crash = exc
