"""Hierarchical timer wheel: an alternative event queue for the kernel.

The heap scheduler in :mod:`repro.sim.environment` pays ``O(log n)`` per
event.  That is fine for tens of closed-loop clients, but the open-loop
traffic layer (:mod:`repro.workloads.traffic`) keeps *hundreds of
thousands* of homogeneous timer events pending — arrival ticks, client
think times — where a timer wheel's ``O(1)`` bucket insert wins.

:class:`TimerWheel` implements the same contract the environment's heap
provides — push ``(when, seq, event)`` entries, pop them in exactly
``(when, seq)`` order — as a three-tier hierarchy:

* **current** — a real heap holding entries of the slot being drained
  (and any entry scheduled at or before it, e.g. zero-delay wake-ups);
* **near** — per-slot buckets (``tick`` seconds wide) for the next
  ``near_slots`` slots: one dict append per push, one ``heapify`` per
  slot drained;
* **mid** — coarse buckets ``near_slots`` slots wide, cascaded into
  *near* one bucket at a time as the cursor approaches;
* **far** — a plain heap for everything beyond the mid horizon.

Entries never compare their :class:`~repro.sim.events.Event` payloads:
the ``seq`` tie-break is unique per environment, so sorting bucket
contents reproduces heap order exactly.  A seeded run on
:class:`WheelEnvironment` is therefore event-for-event identical to the
same run on :class:`~repro.sim.environment.Environment` — the
equivalence tests assert byte-identical traces.

Virtual time must be non-negative (slot indexing truncates toward
zero); the environment enforces this at construction.
"""

from __future__ import annotations

import gc
from heapq import heapify, heappop, heappush
from typing import Any, Dict, List, Optional, Tuple, Union, cast

from repro.sim.environment import EmptySchedule, Environment
from repro.sim.events import Event, SimulationError

#: One scheduled entry, exactly as the heap scheduler stores it.
Entry = Tuple[float, int, Event]


class TimerWheel:
    """Pending-event queue with O(1) inserts for near-future timers.

    Drop-in replacement for the environment's heap list: supports
    :meth:`push`, :meth:`pop`, :meth:`peek_when`, ``len()`` and
    :meth:`clear`, and yields entries in identical ``(when, seq)``
    order.
    """

    __slots__ = ("tick", "_near_width", "_span", "_cursor", "_current",
                 "_near", "_near_slots", "_mid", "_mid_buckets", "_far")

    def __init__(self, tick: float = 1e-3, near_slots: int = 256,
                 mid_buckets: int = 64, origin: float = 0.0) -> None:
        if tick <= 0.0:
            raise ValueError(f"tick must be > 0, got {tick}")
        if near_slots < 2 or mid_buckets < 2:
            raise ValueError("near_slots and mid_buckets must be >= 2")
        if origin < 0.0:
            raise ValueError(f"origin must be >= 0, got {origin}")
        self.tick = tick
        self._near_width = near_slots
        self._span = near_slots * mid_buckets
        #: Slot currently being drained; every bucketed entry has a
        #: strictly greater slot, every *current* entry an equal-or-
        #: smaller one.
        self._cursor = int(origin / tick)
        #: Mutated in place and never rebound (``current[:] = ...`` on
        #: refill) — the same aliasing contract ``Environment._queue``
        #: keeps, so the inlined run loop can hold a direct reference.
        self._current: List[Entry] = []
        self._near: Dict[int, List[Entry]] = {}
        self._near_slots: List[int] = []
        self._mid: Dict[int, List[Entry]] = {}
        self._mid_buckets: List[int] = []
        self._far: List[Entry] = []

    def __len__(self) -> int:
        # Derived, not counted: maintaining a size counter costs an
        # in-place attribute update on every push *and* pop, and the
        # hot paths never ask for the length.
        return (len(self._current) + len(self._far)
                + sum(len(b) for b in self._near.values())
                + sum(len(b) for b in self._mid.values()))

    def __bool__(self) -> bool:
        # _near_slots/_mid_buckets are non-empty iff their dicts are.
        return bool(self._current or self._near_slots
                    or self._mid_buckets or self._far)

    def push(self, entry: Entry) -> None:
        """Insert one ``(when, seq, event)`` entry."""
        slot = int(entry[0] / self.tick)
        cursor = self._cursor
        if slot <= cursor:
            # The slot being drained (zero-delay schedules), or earlier —
            # possible when peek() advanced the cursor ahead of the
            # clock; the heap keeps these correctly ordered.
            heappush(self._current, entry)
            return
        distance = slot - cursor
        if distance < self._near_width:
            bucket = self._near.get(slot)
            if bucket is None:
                self._near[slot] = bucket = []
                heappush(self._near_slots, slot)
            bucket.append(entry)
        elif distance < self._span:
            index = slot // self._near_width
            bucket = self._mid.get(index)
            if bucket is None:
                self._mid[index] = bucket = []
                heappush(self._mid_buckets, index)
            bucket.append(entry)
        else:
            heappush(self._far, entry)

    def pop(self) -> Entry:
        """Remove and return the globally minimal entry.

        Raises :class:`IndexError` when empty (like ``heappop``).
        """
        current = self._current
        if not current and not self._advance():
            raise IndexError("pop from an empty timer wheel")
        return heappop(current)

    def peek_when(self) -> float:
        """Time of the next entry, or ``inf`` when empty."""
        if not self._current and not self._advance():
            return float("inf")
        return self._current[0][0]

    def clear(self) -> None:
        """Drop every entry (the environment's crash wipe).

        The cursor is kept: it only ever trails the clock, so events
        scheduled after the wipe still land at or ahead of it.
        """
        self._current.clear()
        self._near.clear()
        self._near_slots.clear()
        self._mid.clear()
        self._mid_buckets.clear()
        self._far.clear()

    # ------------------------------------------------------------------
    # Cursor advancement
    # ------------------------------------------------------------------

    def _advance(self) -> bool:
        """Refill ``_current`` with the next slot's entries.

        Cascades any coarser tier whose lower bound could precede the
        next near slot, so by the time a slot is drained it holds every
        entry belonging to it.  Returns False when the wheel is empty.
        """
        near_slots = self._near_slots
        mid_buckets = self._mid_buckets
        far = self._far
        tick = self.tick
        width = self._near_width
        while True:
            near_bound = near_slots[0] if near_slots else None
            if far:
                far_bound = int(far[0][0] / tick)
                if ((near_bound is None or far_bound <= near_bound)
                        and (not mid_buckets
                             or far_bound <= mid_buckets[0] * width)):
                    self._refill_from_far(far_bound)
                    continue
            if mid_buckets and (near_bound is None
                                or mid_buckets[0] * width <= near_bound):
                self._cascade_mid()
                continue
            if near_bound is None:
                return False
            slot = heappop(near_slots)
            entries = self._near.pop(slot)
            heapify(entries)
            # In-place refill (never rebind): outstanding aliases of
            # _current — the environment's inlined run loop — stay valid.
            self._current[:] = entries
            self._cursor = slot
            return True

    def _place_near(self, entry: Entry) -> None:
        slot = int(entry[0] / self.tick)
        bucket = self._near.get(slot)
        if bucket is None:
            self._near[slot] = bucket = []
            heappush(self._near_slots, slot)
        bucket.append(entry)

    def _refill_from_far(self, first_slot: int) -> None:
        """Pull one near-window worth of entries out of the far heap."""
        far = self._far
        limit = (first_slot + self._near_width) * self.tick
        while far and far[0][0] < limit:
            self._place_near(heappop(far))

    def _cascade_mid(self) -> None:
        """Re-bucket the frontmost mid bucket into per-slot near buckets."""
        index = heappop(self._mid_buckets)
        for entry in self._mid.pop(index):
            self._place_near(entry)


class WheelEnvironment(Environment):
    """An :class:`~repro.sim.environment.Environment` scheduled by a
    :class:`TimerWheel` instead of a binary heap.

    Seeded runs are event-for-event identical to the heap kernel; only
    the scheduling cost model differs.  Select it per run with
    ``SystemConfig(kernel="wheel")`` or ``repro oltp/traffic --kernel
    wheel``.
    """

    __slots__ = ()

    def __init__(self, initial_time: float = 0.0,
                 tick: float = 1e-3, near_slots: int = 256,
                 mid_buckets: int = 64) -> None:
        if initial_time < 0.0:
            raise ValueError(
                f"wheel kernel needs initial_time >= 0, got {initial_time}")
        super().__init__(initial_time)
        wheel = TimerWheel(tick=tick, near_slots=near_slots,
                           mid_buckets=mid_buckets, origin=initial_time)
        self._queue = wheel  # type: ignore[assignment]
        self._push = wheel.push

    # The base class inlines heap access in step/run/peek; mirror the
    # same logic over the wheel's methods.

    @property
    def _wheel(self) -> TimerWheel:
        return cast(TimerWheel, self._queue)

    def peek(self) -> float:
        return self._wheel.peek_when()

    def step(self) -> None:
        try:
            when, _, event = self._wheel.pop()
        except IndexError:
            raise EmptySchedule("no scheduled events remain") from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
            if self._crash is not None:
                crash, self._crash = self._crash, None
                raise crash

    def run(self, until: Union[None, float, Event] = None) -> Any:
        if until is None:
            stop_at: float = float("inf")
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_at, stop_event = float("inf"), until
            if until.processed:
                if not until.ok:
                    raise until.value
                return until.value
        else:
            stop_at, stop_event = float(until), None
            if stop_at < self._now:
                raise ValueError(
                    f"until ({stop_at}) must not be before now ({self._now})")

        # Collector paused for the loop, exactly as in Environment.run:
        # the event churn is allocation-heavy but almost never cyclic.
        #
        # The loop drains ``wheel._current`` directly — the wheel keeps
        # that list in place (refills assign ``current[:] = ...``), so
        # the alias survives cascades and crash wipes, and the common
        # case costs one heappop instead of two method calls
        # (peek_when + pop).  ``advance`` is only entered on slot
        # boundaries; per-event cost matches the heap kernel's loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            wheel = self._wheel
            current = wheel._current
            advance = wheel._advance
            pop = heappop
            if stop_event is None:
                while current or advance():
                    if current[0][0] > stop_at:
                        self._now = stop_at
                        return None
                    when, _, event = pop(current)
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    assert callbacks is not None
                    for callback in callbacks:
                        callback(event)
                        if self._crash is not None:
                            crash, self._crash = self._crash, None
                            raise crash
            else:
                while current or advance():
                    if stop_event.callbacks is None:
                        break
                    if current[0][0] > stop_at:
                        self._now = stop_at
                        return None
                    when, _, event = pop(current)
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    assert callbacks is not None
                    for callback in callbacks:
                        callback(event)
                        if self._crash is not None:
                            crash, self._crash = self._crash, None
                            raise crash
        finally:
            if gc_was_enabled:
                gc.enable()

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "run() finished with the target event still pending")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value

        if stop_at != float("inf"):
            self._now = stop_at
        return None


#: Registry of selectable kernels, shared by SystemConfig and the CLI.
KERNELS = ("heap", "wheel")


def make_environment(kernel: str = "heap",
                     initial_time: float = 0.0) -> Environment:
    """Build an environment running the named kernel."""
    if kernel == "heap":
        return Environment(initial_time)
    if kernel == "wheel":
        return WheelEnvironment(initial_time)
    raise ValueError(f"unknown kernel {kernel!r}; choose from {KERNELS}")


__all__ = ["Entry", "KERNELS", "TimerWheel", "WheelEnvironment",
           "make_environment"]
