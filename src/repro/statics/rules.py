"""The built-in ``RPL0xx`` rules (DESIGN.md §9 maps each to its PR).

Every rule encodes an invariant another PR established at runtime:

* RPL001 tracer-guard      — zero-cost telemetry off-path (PR 5)
* RPL002 slots-hotpath     — ``__slots__`` on the event kernel (PR 5;
  PR 10 extended the roots to the buffer pool and the SSD managers)
* RPL003 determinism       — seeded, replayable simulation (PRs 1–5)
* RPL004 fault-safety      — device I/O reaches retry/degradation (PR 4)
* RPL005 no-swallow        — no silently swallowed exceptions (PR 4)
* RPL006 telemetry-labels  — statically known metric cardinality (PR 2)
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.statics.engine import (
    Finding,
    ModuleInfo,
    Rule,
    dotted_name,
    rule,
)

#: Recording methods of ``repro.telemetry.tracer.Tracer``.
TRACER_METHODS = frozenset(
    {"record", "span", "instant", "complete", "counter"})

#: Exception names that satisfy the RPL004 fault-handling requirement.
FAULT_EXCEPTIONS = frozenset(
    {"IoFault", "TransientIoError", "DeviceDeadError",
     "Exception", "BaseException"})


def _is_tracerish(expr: ast.AST) -> bool:
    """Whether ``expr`` denotes a tracer (``tracer``/``self._tracer``/…)."""
    dotted = dotted_name(expr)
    if dotted is None:
        return False
    last = dotted.rsplit(".", 1)[-1]
    return last in ("tracer", "_tracer")


def _mentions_tracer_enabled(test: ast.AST) -> bool:
    """Whether an ``if`` test consults ``<tracer>.enabled`` positively."""
    for node in ast.walk(test):
        if (isinstance(node, ast.Attribute) and node.attr == "enabled"
                and _is_tracerish(node.value)):
            return True
    return False


@rule
class TracerGuardRule(Rule):
    """RPL001: tracer calls must be dominated by a ``tracer.enabled`` check.

    PR 5's speedups depend on the telemetry off-path allocating nothing:
    an unguarded ``tracer.instant(...)`` still builds its args dict and
    enters the call even under :class:`NullTracer`.  A call site is
    accepted when an enclosing ``if`` consults ``<tracer>.enabled``, or
    when the enclosing function starts with an early exit of the form
    ``if not <tracer>.enabled: return``.
    """

    code = "RPL001"
    name = "tracer-guard"
    description = ("tracer.record/span/instant/complete/counter calls must "
                   "be guarded by a tracer.enabled check")
    paths = ("repro/engine/", "repro/storage/", "repro/core/",
             "repro/workloads/", "repro/harness/", "repro/faults/")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in TRACER_METHODS
                    and _is_tracerish(node.func.value)):
                continue
            if self._guarded(module, node):
                continue
            yield self.finding(
                module, node,
                f"tracer.{node.func.attr}(...) is not guarded by a "
                f"tracer.enabled check (zero-cost telemetry off-path)")

    def _guarded(self, module: ModuleInfo, call: ast.Call) -> bool:
        for ancestor in module.ancestors(call):
            if (isinstance(ancestor, ast.If)
                    and _mentions_tracer_enabled(ancestor.test)):
                return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return self._early_exit_guard(ancestor, call)
        return False

    @staticmethod
    def _early_exit_guard(function: ast.AST, call: ast.Call) -> bool:
        """``if not tracer.enabled: return`` before the call dominates it."""
        for stmt in function.body:  # type: ignore[attr-defined]
            if stmt.lineno >= call.lineno:
                break
            if not isinstance(stmt, ast.If) or stmt.orelse:
                continue
            test = stmt.test
            if not (isinstance(test, ast.UnaryOp)
                    and isinstance(test.op, ast.Not)
                    and _mentions_tracer_enabled(test.operand)):
                continue
            if stmt.body and isinstance(
                    stmt.body[-1], (ast.Return, ast.Continue, ast.Raise)):
                return True
        return False


@rule
class SlotsHotpathRule(Rule):
    """RPL002: hot-path classes (and their subclasses) need ``__slots__``.

    One instance per event/process/request makes attribute storage part
    of the kernel's allocation budget; a single un-slotted subclass
    gives every instance a ``__dict__`` again and silently reverts the
    PR 5 speedups.  The rule collects classes defined under the hot-path
    roots, closes over their in-repo subclasses (by base name, across
    files), and flags any that lack a ``__slots__`` declaration.
    Enums, exception types, and names listed in the rule's ``exempt``
    option are excluded.
    """

    code = "RPL002"
    name = "slots-hotpath"
    description = ("classes on the simulator hot path (and their "
                   "subclasses) must declare __slots__")
    #: Where hot-path classes are *defined* (subclasses are found anywhere).
    #: The engine/core entries cover the partitioned buffer pool and the
    #: SSD managers: one frame/record per page and one manager vtable hit
    #: per fetch put their attribute storage on the same budget as the
    #: kernel's events.
    hotpath_roots: Sequence[str] = (
        "repro/sim/", "repro/storage/request.py",
        "repro/engine/buffer_pool.py", "repro/engine/page.py",
        "repro/core/ssd_manager.py", "repro/core/ssd_buffer_table.py")
    #: Findings are only emitted for first-party sources, not test files.
    paths = ("repro/",)

    _EXCEPTION_BASES = frozenset(
        {"Exception", "BaseException", "ArithmeticError", "ValueError",
         "TypeError", "RuntimeError", "KeyError", "LookupError", "OSError"})
    _ENUM_BASES = frozenset({"Enum", "IntEnum", "Flag", "IntFlag"})

    def __init__(self, options=None):
        super().__init__(options)
        if "hotpath_roots" in self.options:
            self.hotpath_roots = tuple(
                str(p) for p in self.options["hotpath_roots"])
        self.exempt: Set[str] = {
            str(name) for name in self.options.get("exempt", ())}
        #: class name -> (module path, base names, has slots, node line/col)
        self._classes: Dict[str, Tuple[ModuleInfo, ast.ClassDef]] = {}
        self._bases: Dict[str, Tuple[str, ...]] = {}

    def collect(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            # Last definition wins; same-named helpers in different test
            # fixtures are out of scope anyway (findings are per-class).
            self._classes[node.name] = (module, node)
            bases = []
            for base in node.bases:
                dotted = dotted_name(base)
                if dotted is not None:
                    bases.append(dotted.rsplit(".", 1)[-1])
            self._bases[node.name] = tuple(bases)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        hotpath = self._hotpath_closure()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in hotpath or node.name in self.exempt:
                continue
            recorded = self._classes.get(node.name)
            if recorded is None or recorded[1] is not node:
                continue
            if self._has_slots(node) or self._is_exempt_kind(node.name):
                continue
            yield self.finding(
                module, node,
                f"hot-path class {node.name} does not declare __slots__ "
                f"(instances would regain a __dict__)")

    def _hotpath_closure(self) -> Set[str]:
        """Hot-path classes plus everything that subclasses them."""
        roots = {
            name for name, (module, _node) in self._classes.items()
            if module.in_scope(self.hotpath_roots)
            and not self._is_exempt_kind(name)
        }
        closed = set(roots)
        changed = True
        while changed:
            changed = False
            for name, bases in self._bases.items():
                if name in closed or self._is_exempt_kind(name):
                    continue
                if any(base in closed for base in bases):
                    closed.add(name)
                    changed = True
        return closed

    def _is_exempt_kind(self, name: str) -> bool:
        """Enums and exceptions: slots are wrong or pointless there."""
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for base in self._bases.get(current, ()):
                if base in self._ENUM_BASES:
                    return True
                if base in self._EXCEPTION_BASES or base.endswith("Error"):
                    return True
                frontier.append(base)
        return False

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        # @dataclass(slots=True) also removes the __dict__.
        for decorator in node.decorator_list:
            if (isinstance(decorator, ast.Call)
                    and any(kw.arg == "slots"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                            for kw in decorator.keywords)):
                return True
        return False


@rule
class DeterminismRule(Rule):
    """RPL003: the simulator must not consult wall clocks or global RNG.

    Every figure is a seeded, replayable run; ``time.time()`` or the
    module-level ``random.*`` functions (whose state is shared and
    unseeded) make results machine-dependent, and iterating a bare
    ``set`` to feed the scheduler makes event order depend on hash
    randomization.
    """

    code = "RPL003"
    name = "determinism"
    description = ("no wall-clock time, global random state, or "
                   "set-ordered scheduling inside the simulator")
    paths = ("repro/sim/", "repro/core/", "repro/engine/",
             "repro/storage/ftl/")

    _FORBIDDEN_CALLS = {
        "time.time": "wall-clock time",
        "time.monotonic": "wall-clock time",
        "time.perf_counter": "wall-clock time",
        "datetime.now": "wall-clock time",
        "datetime.utcnow": "wall-clock time",
        "datetime.datetime.now": "wall-clock time",
        "datetime.datetime.utcnow": "wall-clock time",
        "os.urandom": "unseeded entropy",
    }
    #: Calls that schedule work; a set-ordered loop feeding one of these
    #: makes the event order depend on hash randomization.
    _SCHEDULING = frozenset(
        {"schedule", "heappush", "succeed", "fail", "process", "push",
         "submit"})

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                finding = self._check_call(module, node)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.For):
                finding = self._check_set_loop(module, node)
                if finding is not None:
                    yield finding

    def _check_call(self, module: ModuleInfo,
                    node: ast.Call) -> Optional[Finding]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        reason = self._FORBIDDEN_CALLS.get(dotted)
        if reason is not None:
            return self.finding(
                module, node,
                f"{dotted}() introduces {reason} into a deterministic "
                f"simulation; derive times from env.now and entropy from "
                f"a seeded random.Random")
        if dotted.startswith("random.") and dotted != "random.Random":
            return self.finding(
                module, node,
                f"{dotted}() uses the shared module-level RNG; draw from "
                f"a seeded random.Random instance instead")
        return None

    def _check_set_loop(self, module: ModuleInfo,
                        node: ast.For) -> Optional[Finding]:
        if not self._is_bare_set(node.iter, node, module):
            return None
        for inner in ast.walk(node):
            if (isinstance(inner, ast.Call)
                    and isinstance(inner.func, (ast.Attribute, ast.Name))):
                name = (inner.func.attr if isinstance(inner.func,
                                                      ast.Attribute)
                        else inner.func.id)
                if name in self._SCHEDULING:
                    return self.finding(
                        module, node,
                        f"iterating a set to call {name}() makes event "
                        f"order depend on hash randomization; sort the "
                        f"set (or use a list/dict) first")
        return None

    def _is_bare_set(self, iterable: ast.AST, loop: ast.For,
                     module: ModuleInfo) -> bool:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            return True
        if (isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Name)
                and iterable.func.id in ("set", "frozenset")):
            return True
        # Local-variable inference: `x = set()` / `x = {...}` earlier in
        # the same function.
        if isinstance(iterable, ast.Name):
            function = module.enclosing_function(loop)
            if function is None:
                return False
            for stmt in ast.walk(function):
                if (isinstance(stmt, ast.Assign)
                        and stmt.lineno < loop.lineno
                        and any(isinstance(t, ast.Name)
                                and t.id == iterable.id
                                for t in stmt.targets)
                        and self._is_set_expr(stmt.value)):
                    return True
        return False

    @staticmethod
    def _is_set_expr(expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in ("set", "frozenset"))


@rule
class FaultSafetyRule(Rule):
    """RPL004: raw device I/O must reach the fault machinery.

    PR 4 made every device submission fallible (transient errors, device
    death).  An awaited ``device.submit/read/write`` that neither sits
    in a ``try`` reaching an I/O-fault handler nor routes through one of
    the retry helpers (``_ssd_io`` and friends) turns an injected fault
    into an unhandled crash instead of a retry or a graceful detach.
    """

    code = "RPL004"
    name = "fault-safety"
    description = ("awaited Device.submit/read/write calls must be inside "
                   "fault handling or a retry helper")
    paths = ("repro/engine/", "repro/core/")

    #: Functions whose body *is* the fault handling (callers may await
    #: raw device events inside them, or pass lambdas into them).
    retry_helpers = ("_ssd_io", "_ssd_read_frame", "_ssd_write_frame",
                     "_flush_with_retry", "_io_with_retry")

    def __init__(self, options=None):
        super().__init__(options)
        if "retry_helpers" in self.options:
            self.retry_helpers = tuple(
                str(h) for h in self.options["retry_helpers"])

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_device_io(node):
                continue
            if not self._is_awaited(module, node):
                continue
            if self._is_protected(module, node):
                continue
            assert isinstance(node.func, ast.Attribute)
            yield self.finding(
                module, node,
                f"awaited device.{node.func.attr}(...) has no fault "
                f"handling; wrap it in try/except IoFault or route it "
                f"through a retry helper ({', '.join(self.retry_helpers)})")

    @staticmethod
    def _is_device_io(node: ast.Call) -> bool:
        if not isinstance(node.func, ast.Attribute):
            return False
        receiver = dotted_name(node.func.value)
        if receiver is None:
            return False
        last = receiver.rsplit(".", 1)[-1]
        if node.func.attr == "submit":
            return True
        return (node.func.attr in ("read", "write")
                and (last == "device" or last.endswith("_device")))

    def _is_awaited(self, module: ModuleInfo, node: ast.Call) -> bool:
        """The call's event is waited on (yield / yield from / await)."""
        parent = module.parents.get(node)
        return isinstance(parent, (ast.Yield, ast.YieldFrom, ast.Await))

    def _is_protected(self, module: ModuleInfo, node: ast.Call) -> bool:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.Lambda):
                # A thunk handed to a retry helper; the helper awaits it
                # under its own try/except.
                return True
            if isinstance(ancestor, ast.Try):
                for handler in ancestor.handlers:
                    if self._handler_catches_faults(handler):
                        return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor.name in self.retry_helpers
        return False

    @staticmethod
    def _handler_catches_faults(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                 else [handler.type])
        for expr in types:
            dotted = dotted_name(expr)
            if dotted is not None and (
                    dotted.rsplit(".", 1)[-1] in FAULT_EXCEPTIONS):
                return True
        return False


@rule
class NoSwallowRule(Rule):
    """RPL005: no silently swallowed exceptions.

    A bare ``except:`` (which also eats ``KeyboardInterrupt`` and the
    kernel's crash propagation) is always flagged; ``except Exception``
    / ``except BaseException`` are flagged when the handler body does
    nothing but ``pass``.  Intentional cases carry a line suppression.
    """

    code = "RPL005"
    name = "no-swallow"
    description = ("no bare except: and no except Exception: pass "
                   "handlers")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare except: swallows everything including "
                    "KeyboardInterrupt and kernel crash propagation; "
                    "name the exception types")
                continue
            dotted = dotted_name(node.type)
            if dotted in ("Exception", "BaseException") and self._only_pass(
                    node.body):
                yield self.finding(
                    module, node,
                    f"except {dotted}: pass silently swallows every "
                    f"error; narrow the type or handle it")

    @staticmethod
    def _only_pass(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            # A docstring or bare `...` is still "does nothing".
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and (stmt.value.value is Ellipsis
                         or isinstance(stmt.value.value, str))):
                continue
            return False
        return True


@rule
class TelemetryLabelsRule(Rule):
    """RPL006: metric names and label sets must be string literals.

    The registry keys time series by (name, labelnames); a computed name
    or label tuple makes metric cardinality impossible to audit
    statically (PR 2's registry design assumes a fixed instrument set).
    Label *values* may be dynamic — only the name and the label schema
    must be literal.
    """

    code = "RPL006"
    name = "telemetry-labels"
    description = ("registry.counter/gauge/histogram names and labelnames "
                   "must be string literals")
    paths = ("repro/",)

    _FACTORIES = frozenset({"counter", "gauge", "histogram"})

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr in self._FACTORIES and self._is_registry(
                    node.func.value):
                yield from self._check_factory(module, node)
            elif node.func.attr == "labels":
                yield from self._check_labels(module, node)

    @staticmethod
    def _is_registry(expr: ast.AST) -> bool:
        dotted = dotted_name(expr)
        if dotted is None:
            return False
        return dotted.rsplit(".", 1)[-1] in ("registry", "_registry")

    def _check_factory(self, module: ModuleInfo,
                       node: ast.Call) -> Iterator[Finding]:
        assert isinstance(node.func, ast.Attribute)
        name_arg: Optional[ast.expr] = None
        if node.args:
            name_arg = node.args[0]
        else:
            for keyword in node.keywords:
                if keyword.arg == "name":
                    name_arg = keyword.value
        if name_arg is not None and not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)):
            yield self.finding(
                module, name_arg,
                f"registry.{node.func.attr}(...) metric name must be a "
                f"string literal so cardinality stays statically known")
        for keyword in node.keywords:
            if keyword.arg != "labelnames":
                continue
            if not self._literal_str_sequence(keyword.value):
                yield self.finding(
                    module, keyword.value,
                    f"registry.{node.func.attr}(...) labelnames must be a "
                    f"tuple/list of string literals")

    def _check_labels(self, module: ModuleInfo,
                      node: ast.Call) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg is None:  # .labels(**computed)
                yield self.finding(
                    module, node,
                    ".labels(**...) hides the label schema; pass each "
                    "label as an explicit keyword")

    @staticmethod
    def _literal_str_sequence(expr: ast.AST) -> bool:
        if not isinstance(expr, (ast.Tuple, ast.List)):
            return False
        return all(isinstance(el, ast.Constant) and isinstance(el.value, str)
                   for el in expr.elts)
