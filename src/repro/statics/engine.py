"""The rule engine behind ``repro lint``.

A :class:`Rule` inspects one parsed module at a time (with an optional
cross-module *collect* pass first) and yields :class:`Finding` records.
The engine owns everything rule-agnostic: discovering files, parsing,
building parent links, ``# repro: noqa[RPL0xx]`` suppression, rule
selection from ``pyproject.toml``, and the text/JSON output formats.

Rules register themselves via the :func:`rule` class decorator; the
registry is keyed by the stable ``RPL0xx`` code so configuration and
suppressions survive renames.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

#: JSON output schema version (bump on breaking changes to the format).
JSON_SCHEMA_VERSION = 1

#: ``# repro: noqa`` or ``# repro: noqa[RPL001]`` / ``[RPL001,RPL005]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE)

_CODE_RE = re.compile(r"^RPL\d{3}$")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    name: str
    message: str
    path: str
    line: int
    col: int

    def to_dict(self) -> Dict[str, object]:
        """The JSON-output row for this finding."""
        return {"code": self.code, "name": self.name,
                "message": self.message, "path": self.path,
                "line": self.line, "col": self.col}

    def format(self) -> str:
        """The one-line text form: ``path:line:col: CODE [name] message``."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.name}] {self.message}")


class ModuleInfo:
    """One parsed source file plus the lookups rules need."""

    def __init__(self, path: str, source: str):
        self.path = path
        #: Forward-slash path, for rule scoping regardless of platform.
        self.posix = path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child-to-parent node map, built lazily on first use."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module node."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest enclosing function/async-function, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def in_scope(self, prefixes: Sequence[str]) -> bool:
        """Whether this module falls under any of the path ``prefixes``.

        A prefix like ``"repro/engine/"`` matches as a path segment
        sequence anywhere in the file's path, so both
        ``src/repro/engine/wal.py`` and a test fixture named
        ``fixtures/repro/engine/x.py`` are in scope.  A prefix ending in
        ``.py`` matches as a path suffix.
        """
        padded = "/" + self.posix
        for prefix in prefixes:
            if prefix.endswith(".py"):
                if padded.endswith("/" + prefix.lstrip("/")):
                    return True
            elif "/" + prefix.lstrip("/") in padded:
                return True
        return False


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as ``a.b.c``, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# Rules and the registry
# ----------------------------------------------------------------------

class Rule:
    """Base class: one invariant, one stable code.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`description`, and
    the default :attr:`paths` scope (empty = every linted file), then
    implement :meth:`check`.  Rules needing cross-module context (e.g.
    subclass closures) also implement :meth:`collect`, which the engine
    calls for *every* module before any :meth:`check` call.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    #: Path prefixes this rule applies to (see :meth:`ModuleInfo.in_scope`).
    paths: Sequence[str] = ()

    def __init__(self, options: Optional[Dict[str, object]] = None):
        options = dict(options or {})
        if "paths" in options:
            self.paths = tuple(str(p) for p in options.pop("paths"))
        self.options = options

    def applies_to(self, module: ModuleInfo) -> bool:
        """Whether :meth:`check` should run on ``module``."""
        if not self.paths:
            return True
        return module.in_scope(self.paths)

    def collect(self, module: ModuleInfo) -> None:
        """Cross-module pre-pass (called for every module, in order)."""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(code=self.code, name=self.name, message=message,
                       path=module.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1)


_REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a rule under its ``RPL0xx`` code."""
    if not _CODE_RE.match(cls.code):
        raise ValueError(f"rule {cls.__name__} has invalid code "
                         f"{cls.code!r} (want RPL0xx)")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registry, importing the built-in rules on first use."""
    import repro.statics.rules  # noqa: F401  (registration side effect)
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

@dataclasses.dataclass
class LintConfig:
    """Effective lint configuration (defaults + ``pyproject.toml``).

    ``select`` limits the run to the listed codes (None = all
    registered); ``ignore`` then removes codes; ``exclude`` drops files
    whose path contains any of the given fragments.  ``rule_options``
    maps a code to its ``[tool.repro.lint.<code>]`` table (e.g. a
    ``paths`` override or a rule-specific allowlist).
    """

    select: Optional[Tuple[str, ...]] = None
    ignore: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ("/.git/", "/.repro-cache/", "/build/")
    rule_options: Dict[str, Dict[str, object]] = dataclasses.field(
        default_factory=dict)

    def enabled_codes(self) -> List[str]:
        """The codes this configuration runs, in code order."""
        codes = sorted(all_rules())
        if self.select is not None:
            wanted = set(self.select)
            codes = [code for code in codes if code in wanted]
        ignored = set(self.ignore)
        return [code for code in codes if code not in ignored]

    def excludes(self, path: str) -> bool:
        """Whether ``path`` is excluded from linting entirely."""
        padded = "/" + path.replace("\\", "/")
        return any(fragment in padded for fragment in self.exclude)

    def build_rules(self) -> List[Rule]:
        """Instantiate the enabled rules with their options."""
        registry = all_rules()
        return [registry[code](self.rule_options.get(code))
                for code in self.enabled_codes()]


def load_config(root: Optional[Path] = None) -> LintConfig:
    """Read ``[tool.repro.lint]`` from ``pyproject.toml`` if possible.

    Falls back to the built-in defaults when the file (or ``tomllib``,
    absent before Python 3.11) is unavailable — the defaults match the
    committed pyproject block, so older interpreters lint identically.
    """
    config = LintConfig()
    if root is None:
        root = Path.cwd()
    pyproject = Path(root) / "pyproject.toml"
    if not pyproject.is_file():
        return config
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        return config
    try:
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
    except (OSError, ValueError):
        return config
    table = data.get("tool", {}).get("repro", {}).get("lint", {})
    if not isinstance(table, dict):
        return config
    if "select" in table:
        config.select = tuple(str(c) for c in table["select"])
    if "ignore" in table:
        config.ignore = tuple(str(c) for c in table["ignore"])
    if "exclude" in table:
        config.exclude = tuple(str(c) for c in table["exclude"])
    for key, value in table.items():
        if _CODE_RE.match(key) and isinstance(value, dict):
            config.rule_options[key] = dict(value)
    return config


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

def noqa_codes(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppressions: line number -> codes (None = all codes)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for number, text in enumerate(lines, start=1):
        if "noqa" not in text:
            continue
        match = _NOQA_RE.search(text)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[number] = None
        else:
            out[number] = {c.strip().upper() for c in codes.split(",")
                           if c.strip()}
    return out


def _suppressed(finding: Finding,
                suppressions: Dict[int, Optional[Set[str]]]) -> bool:
    if finding.line not in suppressions:
        return False
    codes = suppressions[finding.line]
    return codes is None or finding.code in codes


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------

@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = dataclasses.field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    errors: List[str] = dataclasses.field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 clean, 1 findings, 2 broken input (parse/read errors)."""
        if self.errors:
            return 2
        return 1 if self.findings else 0


def _iter_files(paths: Iterable[str], config: LintConfig) -> List[str]:
    out: List[str] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            found = sorted(str(p) for p in path.rglob("*.py"))
        else:
            found = [str(path)]
        for name in found:
            if not config.excludes(name):
                out.append(name)
    return out


def _run_rules(modules: List[ModuleInfo], config: LintConfig,
               result: LintResult) -> None:
    rules = config.build_rules()
    for module in modules:
        for rule_obj in rules:
            rule_obj.collect(module)
    for module in modules:
        suppressions = noqa_codes(module.lines)
        for rule_obj in rules:
            if not rule_obj.applies_to(module):
                continue
            for finding in rule_obj.check(module):
                if _suppressed(finding, suppressions):
                    result.suppressed += 1
                else:
                    result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))


def check_paths(paths: Iterable[str],
                config: Optional[LintConfig] = None) -> LintResult:
    """Lint files and directories; directories are walked for ``*.py``."""
    config = config if config is not None else load_config()
    result = LintResult()
    modules: List[ModuleInfo] = []
    for name in _iter_files(paths, config):
        try:
            source = Path(name).read_text(encoding="utf-8")
            modules.append(ModuleInfo(name, source))
        except OSError as exc:
            result.errors.append(f"{name}: {exc}")
            continue
        except SyntaxError as exc:
            result.errors.append(f"{name}: syntax error: {exc.msg} "
                                 f"(line {exc.lineno})")
            continue
        result.files += 1
    _run_rules(modules, config, result)
    return result


def check_source(source: str, path: str = "<string>",
                 config: Optional[LintConfig] = None) -> LintResult:
    """Lint one in-memory source string (the fixture-test entry point)."""
    config = config if config is not None else LintConfig()
    result = LintResult()
    try:
        modules = [ModuleInfo(path, source)]
    except SyntaxError as exc:
        result.errors.append(f"{path}: syntax error: {exc.msg} "
                             f"(line {exc.lineno})")
        return result
    result.files = 1
    _run_rules(modules, config, result)
    return result


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------

def format_findings_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format() for finding in result.findings]
    lines.extend(f"error: {message}" for message in result.errors)
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(f"{len(result.findings)} {noun} in {result.files} files "
                 f"({result.suppressed} suppressed)")
    return "\n".join(lines)


def format_findings_json(result: LintResult) -> str:
    """Machine-readable report (schema pinned by JSON_SCHEMA_VERSION)."""
    by_code: Dict[str, int] = {}
    for finding in result.findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    doc = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding.to_dict() for finding in result.findings],
        "errors": list(result.errors),
        "summary": {
            "files": result.files,
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "by_code": by_code,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)
