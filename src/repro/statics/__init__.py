"""Repo-specific static analysis: ``repro lint``.

PRs 2–5 established invariants that runtime tests can only catch *after*
a violation ships: tracer call sites must be guarded by
``tracer.enabled`` (zero-cost telemetry off-path), hot-path classes must
declare ``__slots__``, the simulator must stay deterministic (no wall
clocks, no global RNG, no set-order-dependent scheduling), raw device
I/O must reach the fault-retry machinery, and metric cardinality must be
statically known.  This package machine-checks those invariants at lint
time, over the AST, so a refactor that silently reverts one fails CI
instead of a benchmark session.

Each rule has a stable ``RPL0xx`` code; a finding can be suppressed on
its line with ``# repro: noqa[RPL0xx]``.  See DESIGN.md §9 for the
rule-to-PR map and CONTRIBUTING.md for how to add a rule.
"""

from repro.statics.engine import (
    Finding,
    LintConfig,
    ModuleInfo,
    Rule,
    all_rules,
    check_paths,
    check_source,
    format_findings_json,
    format_findings_text,
    load_config,
)

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "check_paths",
    "check_source",
    "format_findings_json",
    "format_findings_text",
    "load_config",
]
