"""``python -m repro.statics`` — run the invariant linter."""

from repro.statics.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
