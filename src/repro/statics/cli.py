"""The ``repro lint`` command (also ``python -m repro.statics``)."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.statics.engine import (
    all_rules,
    check_paths,
    format_findings_json,
    format_findings_text,
    load_config,
)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared by both entry points)."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        metavar="PATH",
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="output_format",
                        help="output format (default: text)")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: pyproject / all)")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    registry = all_rules()
    if args.list_rules:
        for code in sorted(registry):
            cls = registry[code]
            print(f"{code} [{cls.name}] {cls.description}")
        return 0
    config = load_config()
    if args.select:
        config.select = tuple(
            c.strip().upper() for c in args.select.split(",") if c.strip())
    if args.ignore:
        config.ignore = tuple(
            c.strip().upper() for c in args.ignore.split(",") if c.strip())
    unknown = [c for c in (config.select or ()) + config.ignore
               if c not in registry]
    if unknown:
        print(f"lint: unknown rule codes: {', '.join(sorted(set(unknown)))} "
              f"(try --list-rules)", file=sys.stderr)
        return 2
    result = check_paths(args.paths, config)
    if args.output_format == "json":
        print(format_findings_json(result))
    else:
        print(format_findings_text(result))
    return result.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for ``python -m repro.statics``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.statics",
        description="AST-based invariant checker for the repro sources")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
